"""Asynchronous checkpoint writer: fsync+rename off the critical path.

The paper's headline checkpoint cost (Figures 3-4) is dominated by the
synchronous write of the application data at the safe point.  Following
the standard double-buffering discipline for overlapping I/O with
computation, :class:`AsyncCheckpointWriter` lets ``CheckpointStore.write``
return as soon as the encoded bytes are handed over (an in-memory copy);
a dedicated worker thread performs the atomic temp-file + fsync + rename
sequence while the application computes on.

Correctness contract:

* ``submit`` applies backpressure: at most ``depth`` images may be
  queued behind the one being written, so a checkpoint storm cannot
  grow memory without bound — the safe point blocks exactly when the
  queue is full, which is also when the virtual-time cost model
  (``ExecutionContext._charge_write``) charges a stall.
* ``flush`` is the durability barrier: it returns only once every
  submitted checkpoint is fully on disk.  The runtime drains the writer
  at every adaptation/failure/completion boundary, so recovery never
  races an in-flight write.
* a write error is sticky: it re-raises at the next ``submit``/``flush``
  so a silently-failing disk cannot masquerade as a healthy checkpoint
  chain.
"""

from __future__ import annotations

import os
import queue
import tempfile
import threading
from pathlib import Path
from time import perf_counter

from repro.trace import schema as _tc
from repro.trace.plane import tracer as trace_writer


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically and durably.

    temp file in the same directory -> write -> fsync(file) ->
    rename over the target -> fsync(directory), so a crash at any point
    leaves either the old file or the new one, never a torn mix, and the
    rename itself survives a power cut.
    """
    path = Path(path)
    tr = trace_writer()  # no-op on the async worker thread (unbound)
    tw0 = perf_counter() if tr.active else 0.0
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_dir(path.parent)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    if tr.active:
        tr.span(_tc.CKPT_WRITE, tw0, a=float(len(data)))


def fsync_dir(directory: Path) -> None:
    """fsync a directory so a rename inside it is durable."""
    try:
        dfd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(dfd)
    except OSError:  # pragma: no cover - directories not fsync-able here
        pass
    finally:
        os.close(dfd)


class AsyncWriteFailed(RuntimeError):
    """A background checkpoint write failed (re-raised at the barrier)."""


class AsyncCheckpointWriter:
    """Bounded-queue background writer with a ``flush()`` barrier."""

    def __init__(self, depth: int = 2) -> None:
        if depth < 1:
            raise ValueError("writer depth must be >= 1")
        self.depth = depth
        self._q: queue.Queue = queue.Queue(maxsize=depth)
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._error: BaseException | None = None
        self._closed = False
        #: total payload bytes handed to the worker (observability).
        self.bytes_submitted = 0
        #: total files the worker has durably written.
        self.writes_completed = 0
        #: wall seconds the worker spent inside disk writes — the
        #: overlap the async design buys (scraped into the registry as
        #: ``repro_ckpt_writer_busy_seconds_total`` at run end).
        self.busy_seconds = 0.0

    # ------------------------------------------------------------------
    def _ensure_thread(self) -> None:
        with self._lock:
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._worker, name="ckpt-writer", daemon=True)
                self._thread.start()

    def _raise_pending(self) -> None:
        with self._lock:
            err, self._error = self._error, None
        if err is not None:
            raise AsyncWriteFailed(
                f"background checkpoint write failed: {err}") from err

    def submit(self, path: Path, data: bytes) -> None:
        """Hand a finished checkpoint image to the worker.

        Returns once the bytes are enqueued (the in-memory copy already
        happened at encode time); blocks only when ``depth`` images are
        already queued behind the one in flight.
        """
        if self._closed:
            raise RuntimeError("writer is closed")
        self._raise_pending()
        self._ensure_thread()
        with self._lock:
            # concurrently reachable: STRATEGY_LOCAL shard stores share
            # one writer across rank threads.
            self.bytes_submitted += len(data)
        self._q.put((Path(path), data))

    def flush(self) -> None:
        """Durability barrier: block until everything submitted is on disk."""
        tr = trace_writer()
        if tr.active:
            tw0 = perf_counter()
            pending = float(self.pending())
            self._q.join()
            tr.span(_tc.CKPT_FLUSH, tw0, a=pending)
        else:
            self._q.join()
        self._raise_pending()

    def pending(self) -> int:
        return self._q.unfinished_tasks

    def close(self) -> None:
        """Drain, stop the worker thread, and surface any pending error."""
        if self._closed:
            return
        self._q.join()
        self._closed = True
        with self._lock:
            thread = self._thread
        if thread is not None and thread.is_alive():
            self._q.put(None)
            thread.join(timeout=10.0)
        self._raise_pending()

    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            item = self._q.get()
            try:
                if item is None:
                    return
                path, data = item
                try:
                    t0 = perf_counter()
                    atomic_write_bytes(path, data)
                    self.busy_seconds += perf_counter() - t0
                    self.writes_completed += 1
                except BaseException as exc:
                    with self._lock:
                        self._error = exc
            finally:
                self._q.task_done()
