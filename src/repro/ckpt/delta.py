"""Incremental (delta) checkpointing: write only what changed.

The paper's Figure 4 cost is the synchronous write of the *whole*
application state at every checkpoint.  For workloads where much of the
SafeData is static between safe points (model parameters, topology
tables, configuration arrays) that is pure waste.
:class:`IncrementalCheckpointStore` detects unchanged fields by content
hash (BLAKE2b-128 by default, streamed straight off the array buffers —
fast, no encode round-trip, and with a collision probability far below
the disk's own undetected-error rate, so a changed field can never be
silently classified as unchanged) and writes a **delta record**
containing only the changed sections, chained by safe-point count to
its base checkpoint.

Chain discipline:

* the first checkpoint, and every ``k``-th thereafter
  (:class:`~repro.ckpt.policy.AnchorEvery`), is a **full anchor** — it
  bounds replay length and corruption blast radius;
* a delta's header names its ``base`` count and the fields it *carries*
  (unchanged, to be taken from the chain) vs. the fields it stores;
* :meth:`IncrementalCheckpointStore.read` resolves the chain from the
  anchor forward, so the result is an ordinary complete
  :class:`~repro.ckpt.snapshot.Snapshot` — restore, scatter and
  adaptation code never see deltas;
* pruning protects every file a surviving checkpoint's chain needs.

Any break in the chain (missing base, checksum failure, cycle) raises
:class:`~repro.ckpt.snapshot.SnapshotCorrupt`, which ``read_latest``
already treats as "fall back to the previous checkpoint" — so a corrupt
anchor degrades recovery by one anchor interval, never to a wrong state.
"""

from __future__ import annotations

import copy
import hashlib
import os
from typing import Any

import numpy as np

from repro.ckpt.policy import AnchorEvery, AnchorPolicy
from repro.ckpt.snapshot import (
    KIND_DELTA,
    KIND_FULL,
    Snapshot,
    SnapshotCorrupt,
    decode_envelope,
    decode_section,
    encode_container,
)
from repro.ckpt.store import CheckpointStore
from repro.util.serialization import dumps_portable, loads_portable

#: hard cap on chain length at read time (cycle / runaway-chain guard).
MAX_CHAIN = 4096


def _pick_digest() -> str:
    """Cheapest available change-detection digest, decided once.

    blake2b is the fastest guaranteed-present algorithm in CPython's
    ``hashlib``; the fallbacks only matter on exotic builds.  Digests
    are volatile per-process state (never persisted), so the choice
    cannot affect checkpoint bytes.
    """
    for name in ("blake2b", "sha256", "md5"):
        if name in hashlib.algorithms_available:
            return name
    return "sha256"


_DIGEST = _pick_digest()


def _new_digest():
    if _DIGEST == "blake2b":
        return hashlib.blake2b(digest_size=16)
    return hashlib.new(_DIGEST)


def content_hash(blob: bytes) -> bytes:
    """Change-detection digest of one field's portable encoding."""
    h = _new_digest()
    h.update(blob)
    return h.digest()


def content_hash_value(value: Any) -> bytes:
    """Change-detection digest of one field *value*.

    Arrays are hashed straight off their buffer (dtype + shape + a
    C-contiguous memoryview) — no ``.tobytes()`` / ``np.save``
    round-trip, so an unchanged multi-megabyte field costs one
    streaming digest pass and zero allocations.  Everything else is
    hashed via its portable encoding.  Equivalent to hashing the
    portable blob for change detection: (dtype, shape, raw bytes)
    determines the ``.npy`` encoding and vice versa.
    """
    if isinstance(value, np.ndarray) and not value.dtype.hasobject:
        arr = value if value.flags.c_contiguous \
            else np.ascontiguousarray(value)
        h = _new_digest()
        h.update(b"NDARR")
        # repr, not dtype.str: the latter collapses every structured
        # dtype of one itemsize to the same "|Vn" token, so two
        # differently-typed fields with equal bytes would collide.
        h.update(repr(arr.dtype).encode())
        h.update(repr(arr.shape).encode())
        # memory order is part of the encoding identity too: np.save
        # records fortran_order, so a C->F flip with equal values must
        # hash as a change or a delta would carry the stale-order blob.
        h.update(b"F" if (value.flags.f_contiguous
                          and not value.flags.c_contiguous) else b"C")
        h.update(arr.data.cast("B") if arr.nbytes else b"")
        return h.digest()
    return content_hash(dumps_portable(value))


class IncrementalCheckpointStore(CheckpointStore):
    """Checkpoint store that writes per-field deltas between anchors."""

    def __init__(self, directory: str | os.PathLike,
                 anchor: AnchorPolicy | int = 8,
                 compress_min_bytes: int | None = None,
                 shard_suffix: str = "", ns_suffix: str = "") -> None:
        super().__init__(directory, compress_min_bytes=compress_min_bytes,
                         shard_suffix=shard_suffix, ns_suffix=ns_suffix)
        if isinstance(anchor, int):
            anchor = AnchorEvery(anchor)
        self.anchor = anchor
        # volatile baseline: hashes of the last written checkpoint's
        # fields.  Lost on process restart, which is safe — the next
        # write simply degrades to a full anchor.
        self._base_count: int | None = None
        self._base_hashes: dict[str, bytes] = {}
        self._chain_len = 0

    # ------------------------------------------------------------------
    def _make_shard(self, rank: int) -> "IncrementalCheckpointStore":
        """STRATEGY_LOCAL shards are incremental too, with their own copy
        of the anchor policy (policies hold per-store cadence state)."""
        return IncrementalCheckpointStore(
            self.dir, anchor=copy.deepcopy(self.anchor),
            compress_min_bytes=self.compress_min_bytes,
            shard_suffix=f".r{rank}", ns_suffix=self.ns_suffix)

    def _make_namespace(self, ns_suffix: str) -> "IncrementalCheckpointStore":
        """Job namespaces keep the incremental behaviour, each with its
        own anchor-policy copy and delta baseline."""
        return IncrementalCheckpointStore(
            self.dir, anchor=copy.deepcopy(self.anchor),
            compress_min_bytes=self.compress_min_bytes,
            ns_suffix=ns_suffix)

    # ------------------------------------------------------------------
    def reset_baseline(self) -> None:
        """Forget the delta baseline; the next write is a full anchor."""
        self._base_count = None
        self._base_hashes = {}
        self._chain_len = 0

    def clear(self) -> None:
        super().clear()
        self.reset_baseline()

    # ------------------------------------------------------------------
    def write(self, snap: Snapshot) -> "os.PathLike":
        # hash values straight off their buffers: unchanged fields are
        # detected without ever building their portable encoding.
        hashes = {name: content_hash_value(value)
                  for name, value in snap.fields.items()}
        count = snap.safepoint_count

        delta_ok = (
            self._base_count is not None
            # a chain base must strictly precede its delta; re-writing an
            # already-used count (deterministic re-execution after a
            # recovery) must start a fresh anchor, never self-reference.
            and self._base_count < count
            and not self.anchor.due(self._chain_len)
            # delta encoding only helps if the field *set* is stable.
            and set(hashes) == set(self._base_hashes)
        )

        if delta_ok:
            changed = {name: dumps_portable(snap.fields[name])
                       for name in snap.fields
                       if hashes[name] != self._base_hashes[name]}
            carried = [name for name in snap.fields if name not in changed]
            header = snap.header(KIND_DELTA)
            header["base"] = self._base_count
            header["fields"] = list(changed)
            header["carry"] = carried
            data = encode_container(header, changed, self.compress_min_bytes)
            self.last_write_kind = KIND_DELTA
            self._chain_len += 1
        else:
            data = snap.encode(compress_min_bytes=self.compress_min_bytes)
            self.last_write_kind = KIND_FULL
            self._chain_len = 0

        self.last_write_nbytes = len(data)
        self.total_bytes_written += len(data)
        self._base_count = count
        self._base_hashes = hashes
        # adaptive anchor policies retarget their cadence from the
        # observed full/delta size ratio; fixed policies no-op.
        self.anchor.observe(self.last_write_kind, len(data))
        self._put(self.path_for(count), data)
        return self.path_for(count)

    # ------------------------------------------------------------------
    def read(self, count: int) -> Snapshot:
        """Resolve ``count``'s delta chain into a complete snapshot."""
        chain: list[tuple[dict, dict]] = []
        disk_nbytes = 0
        cur = count
        while True:
            if len(chain) > MAX_CHAIN:
                raise SnapshotCorrupt(
                    f"delta chain exceeds {MAX_CHAIN} links at count {count}")
            data = self.path_for(cur).read_bytes()
            disk_nbytes += len(data)
            header, sections = decode_envelope(data)
            chain.append((header, sections))
            if header.get("kind", KIND_FULL) == KIND_FULL:
                break
            base = header.get("base")
            if not isinstance(base, int) or not base < cur:
                raise SnapshotCorrupt(
                    f"delta at count {cur} has invalid base {base!r}")
            cur = base

        # replay the chain: anchor first, then each delta towards `count`.
        anchor_header, anchor_sections = chain[-1]
        fields: dict[str, Any] = {
            name: loads_portable(decode_section(anchor_sections, name))
            for name in anchor_header["fields"]}
        for header, sections in reversed(chain[:-1]):
            missing = [n for n in header.get("carry", []) if n not in fields]
            if missing:
                raise SnapshotCorrupt(
                    f"delta at count {header['safepoint_count']} carries "
                    f"fields absent from its chain: {missing}")
            for name in header["fields"]:
                fields[name] = loads_portable(decode_section(sections, name))

        top = chain[0][0]
        snap = Snapshot(app=top["app"],
                        safepoint_count=top["safepoint_count"],
                        fields=fields, mode=top["mode"], meta=top["meta"])
        snap.meta["disk_nbytes"] = disk_nbytes  # whole chain was read
        return snap

    # ------------------------------------------------------------------
    def chain_of(self, count: int) -> list[int]:
        """The counts ``count``'s restore depends on (itself included)."""
        out = [count]
        cur = count
        while len(out) <= MAX_CHAIN:
            try:
                header, _ = decode_envelope(self.path_for(cur).read_bytes())
            except (SnapshotCorrupt, OSError):
                break
            if header.get("kind", KIND_FULL) == KIND_FULL:
                break
            base = header.get("base")
            if not isinstance(base, int) or not base < cur:
                break
            out.append(base)
            cur = base
        return out

    def _protected_counts(self, kept: list[int]) -> set[int]:
        needed: set[int] = set()
        for c in kept:
            needed.update(self.chain_of(c))
        return needed
