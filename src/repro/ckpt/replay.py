"""Safe-point counting and the replay protocol.

Restart "relies on a replay mechanism to reconstruct the stack ... we
actually only need to keep track of the number of safe points executed"
(Section IV.A).  :class:`ReplayState` drives that: while active, woven
ignorable methods are skipped and each safe point increments the counter;
when the counter reaches the snapshot's count the saved data is restored
and execution switches to normal mode.

The same object also drives *run-time adaptation* replays (Section IV.B):
rebuilding the call stack of new threads/ranks up to the team's current
safe point, in which case there may be no snapshot to load (shared data is
already in place) — ``snapshot=None`` expresses that.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.ckpt.snapshot import Snapshot


class SafePointCounter:
    """Thread-safe monotone counter of executed safe points."""

    def __init__(self, start: int = 0) -> None:
        self._lock = threading.Lock()
        self._count = int(start)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def increment(self) -> int:
        with self._lock:
            self._count += 1
            return self._count

    def set(self, value: int) -> None:
        with self._lock:
            if value < self._count:
                raise ValueError("safe-point counter cannot move backwards")
            self._count = value

    def reset(self, value: int = 0) -> None:
        with self._lock:
            self._count = int(value)


class ReplayState:
    """Replay-to-safe-point driver.

    ``on_restore(snapshot)`` is called exactly once, at the safe point whose
    count matches ``target`` (the paper's step 4: "the checkpoint data is
    loaded and execution proceeds normally from that point").
    """

    def __init__(self, target: int, snapshot: Snapshot | None = None,
                 on_restore: Callable[[Snapshot | None], None] | None = None
                 ) -> None:
        if target < 0:
            raise ValueError("replay target must be >= 0")
        self.target = target
        self.snapshot = snapshot
        self.on_restore = on_restore
        self._active = target > 0
        self._restored = False

    @classmethod
    def from_snapshot(cls, snapshot: Snapshot,
                      on_restore: Callable[[Snapshot | None], None] | None = None
                      ) -> "ReplayState":
        return cls(target=snapshot.safepoint_count, snapshot=snapshot,
                   on_restore=on_restore)

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True while methods should be skipped (replay in progress)."""
        return self._active

    @property
    def restored(self) -> bool:
        return self._restored

    def observe_safepoint(self, count: int) -> bool:
        """Notify the replay driver that safe point ``count`` was reached.

        Returns True exactly once — at the restore point — so the caller
        can perform mode-specific post-restore work (e.g. scatter the
        restored arrays in a distributed run).
        """
        if not self._active:
            return False
        if count < self.target:
            return False
        self._active = False
        self._restored = True
        if self.on_restore is not None:
            self.on_restore(self.snapshot)
        return True

    def complete(self, ctx, count: int) -> None:
        """Post-replay completion, run once at the target safe point.

        The default is the restore protocol: load the snapshot (scatter
        / broadcast it across ranks in distributed modes).  Subclasses
        reroute this — an elastic :class:`~repro.elastic.JoinReplay`
        enters the membership-transition rendezvous instead, receiving
        its partitions from the surviving owners rather than a snapshot.
        """
        ctx._restore(self.snapshot, count)

    def restore_into(self, instance: Any) -> None:
        """Convenience: apply the snapshot's fields to ``instance``."""
        if self.snapshot is not None:
            self.snapshot.restore_into(instance)
