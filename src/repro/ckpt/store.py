"""Checkpoint storage and the run-status ledger (the ``pcr`` module).

:class:`CheckpointStore` keeps numbered checkpoint files in a directory,
written atomically (temp file + fsync + rename + directory fsync) so a
crash mid-write can never leave a half-checkpoint that a restart would
trust; corrupt files are detected by the snapshot's checksums and skipped
in favour of the newest intact one.

The store has two orthogonal extensions:

* **async writes** — :meth:`attach_writer` plugs in an
  :class:`~repro.ckpt.writer.AsyncCheckpointWriter`; ``write`` then
  returns after encoding (the in-memory copy) and the fsync+rename runs
  on the worker thread.  :meth:`flush` is the durability barrier and MUST
  be called before any read that needs to observe the latest write.
* **incremental deltas** — see
  :class:`repro.ckpt.delta.IncrementalCheckpointStore`, a subclass that
  writes only changed fields between periodic full anchors.

:class:`RunLedger` implements the paper's start-up protocol: "at
application start-up, the pcr module verifies if the last execution was
concluded without failures".  A run marks itself ``running`` on entry and
``completed`` on clean exit; finding ``running`` on the next start means
the previous execution crashed and replay mode is activated.
"""

from __future__ import annotations

import json
import os
import re
import threading
from pathlib import Path
from typing import TYPE_CHECKING

from repro.ckpt.snapshot import KIND_FULL, Snapshot, SnapshotCorrupt
from repro.ckpt.writer import atomic_write_bytes

if TYPE_CHECKING:  # pragma: no cover
    from repro.ckpt.writer import AsyncCheckpointWriter

_CKPT_RE = re.compile(r"^ckpt_(\d{9})\.pcr$")
_ANY_CKPT_RE = re.compile(r"^ckpt_(\d{9})(\.r\d+)?\.pcr$")


class CheckpointStore:
    """Directory of numbered, atomically-written checkpoint files.

    ``shard_suffix`` names a per-rank shard sub-store (files
    ``ckpt_<count>.r<rank>.pcr`` in the same directory) used by the
    STRATEGY_LOCAL checkpoint path; the master store's file listing and
    recovery only ever see master-format files, so shards never shadow a
    restartable checkpoint.

    ``ns_suffix`` names a job namespace (:meth:`namespace`): files
    ``ckpt_<count>.j<tag>[.r<rank>].pcr`` in the same directory.  The
    same mechanism as shards, one level up — a namespaced store sees
    only its own files, the master sees none of them, and a namespaced
    store can itself shard, so STRATEGY_LOCAL works inside a namespace.
    """

    def __init__(self, directory: str | os.PathLike,
                 compress_min_bytes: int | None = None,
                 shard_suffix: str = "", ns_suffix: str = "") -> None:
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        #: per-section zlib threshold (None disables compression).
        self.compress_min_bytes = compress_min_bytes
        #: bytes written by the most recent :meth:`write` (cost accounting).
        self.last_write_nbytes = 0
        #: kind of the most recent write: "full" or "delta".
        self.last_write_kind = KIND_FULL
        #: cumulative bytes handed to the disk across the store's lifetime.
        self.total_bytes_written = 0
        #: optional async writer; when set, writes are deferred to it.
        self.writer: "AsyncCheckpointWriter | None" = None
        #: "" for the master store, ".r<rank>" for a shard sub-store.
        self.shard_suffix = shard_suffix
        #: "" outside a namespace, ".j<tag>" inside one.
        self.ns_suffix = ns_suffix
        ns = re.escape(ns_suffix)
        self._name_re = re.compile(
            rf"^ckpt_(\d{{9}}){ns}{re.escape(shard_suffix)}\.pcr$")
        #: master + shard files of *this* namespace, shard rank captured.
        self._any_re = re.compile(rf"^ckpt_(\d{{9}}){ns}(\.r\d+)?\.pcr$")
        self._shards: "dict[int, CheckpointStore]" = {}
        self._shard_lock = threading.Lock()
        self._namespaces: "dict[str, CheckpointStore]" = {}

    # ------------------------------------------------------------------
    def attach_writer(self, writer: "AsyncCheckpointWriter") -> None:
        """Route subsequent writes through an asynchronous writer."""
        self.writer = writer

    @property
    def is_async(self) -> bool:
        return self.writer is not None

    def flush(self) -> None:
        """Durability barrier: no-op for sync stores, drain for async."""
        if self.writer is not None:
            self.writer.flush()

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()

    # ------------------------------------------------------------------
    def shard(self, rank: int) -> "CheckpointStore":
        """The per-rank shard sub-store for STRATEGY_LOCAL writes.

        Shards share the parent's directory, compression threshold and
        incremental behaviour (with the anchor-policy configuration
        copied per shard, so adaptive policies track each rank's own
        sizes).  Shard writes are always *synchronous*: the local
        strategy fences every save between two global barriers, so an
        async writer would stall at the closing barrier anyway, and a
        per-rank inline write is exactly what the virtual-time model
        charges.  Cached per rank so delta baselines persist across
        phases.
        """
        if self.shard_suffix:
            raise ValueError("shard stores cannot be sharded again")
        if rank < 0:
            raise ValueError("shard rank must be >= 0")
        with self._shard_lock:
            sub = self._shards.get(rank)
            if sub is None:
                sub = self._make_shard(rank)
                self._shards[rank] = sub
            return sub

    def _make_shard(self, rank: int) -> "CheckpointStore":
        return CheckpointStore(self.dir,
                               compress_min_bytes=self.compress_min_bytes,
                               shard_suffix=f".r{rank}",
                               ns_suffix=self.ns_suffix)

    # ------------------------------------------------------------------
    def namespace(self, tag: str) -> "CheckpointStore":
        """A per-job namespaced sub-store (service isolation).

        Same directory, files ``ckpt_<count>.j<tag>[.r<rank>].pcr``.
        Namespaces are invisible to the master store's listing, recovery
        and ``clear`` — and vice versa — so two concurrent jobs saving
        the same field names can never alias each other's bytes.
        Cached per tag, like shards, so incremental delta baselines
        persist across a job's phases.
        """
        if self.shard_suffix:
            raise ValueError("shard stores cannot be namespaced")
        if self.ns_suffix:
            raise ValueError("namespaces do not nest")
        safe = "".join(c for c in str(tag) if c.isalnum())
        if not safe:
            raise ValueError(f"namespace tag {tag!r} has no usable chars")
        with self._shard_lock:
            sub = self._namespaces.get(safe)
            if sub is None:
                sub = self._make_namespace(f".j{safe}")
                self._namespaces[safe] = sub
            return sub

    def _make_namespace(self, ns_suffix: str) -> "CheckpointStore":
        return CheckpointStore(self.dir,
                               compress_min_bytes=self.compress_min_bytes,
                               ns_suffix=ns_suffix)

    def path_for(self, count: int) -> Path:
        return self.dir / (f"ckpt_{count:09d}"
                           f"{self.ns_suffix}{self.shard_suffix}.pcr")

    def _put(self, path: Path, data: bytes) -> None:
        """Persist one encoded image, sync or via the async writer."""
        if self.writer is not None:
            self.writer.submit(path, data)
        else:
            atomic_write_bytes(path, data)

    def write(self, snap: Snapshot) -> Path:
        """Persist ``snap``; returns the final path.

        With no writer attached the image is durable on return; with an
        async writer it is durable only after :meth:`flush`.
        """
        data = snap.encode(compress_min_bytes=self.compress_min_bytes)
        self.last_write_nbytes = len(data)
        self.last_write_kind = KIND_FULL
        self.total_bytes_written += len(data)
        final = self.path_for(snap.safepoint_count)
        self._put(final, data)
        return final

    def counts(self) -> list[int]:
        """Safe-point counts of all stored checkpoints, ascending."""
        out = []
        for name in os.listdir(self.dir):
            m = self._name_re.match(name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def read(self, count: int) -> Snapshot:
        data = self.path_for(count).read_bytes()
        snap = Snapshot.decode(data)
        # actual bytes pulled off the disk (compression makes this differ
        # from the payload size); the restore cost model charges these.
        snap.meta["disk_nbytes"] = len(data)
        return snap

    def read_latest(self) -> Snapshot | None:
        """Newest *intact* snapshot, or None.

        Corrupt files (torn by a crash, flipped bits) are skipped, so
        recovery degrades to an older checkpoint instead of failing.
        """
        for count in reversed(self.counts()):
            try:
                return self.read(count)
            except (SnapshotCorrupt, OSError):
                continue
        return None

    # ------------------------------------------------------------------
    # shard reassembly: the STRATEGY_LOCAL read path
    # ------------------------------------------------------------------
    def shard_counts(self) -> dict[int, list[int]]:
        """Safe-point counts with shard files on disk: count -> ranks."""
        if self.shard_suffix:
            raise ValueError("shard stores hold one rank's files only")
        out: dict[int, list[int]] = {}
        for name in os.listdir(self.dir):
            m = self._any_re.match(name)
            if m and m.group(2):
                out.setdefault(int(m.group(1)), []).append(
                    int(m.group(2)[2:]))
        for ranks in out.values():
            ranks.sort()
        return out

    def assemble_from_shards(self, count: int,
                             partitioned: dict | None = None,
                             _ranks: list[int] | None = None
                             ) -> Snapshot | None:
        """Reassemble a master-format snapshot from per-rank shards.

        ``STRATEGY_LOCAL`` writes one same-shape shard per rank (each a
        full-size array valid only in that rank's owned region, plus the
        replicated non-partitioned SafeData).  Given the ``partitioned``
        declarations (field -> :class:`~repro.core.templates.Partitioned`,
        for the layouts), the owned regions are recombined into whole
        arrays — so a run that only ever saved shards is restartable, in
        any mode, exactly like a master-format checkpoint.

        Returns None when no complete, intact shard set exists at
        ``count`` — recovery then degrades to an older checkpoint, the
        same contract as :meth:`read_latest`.
        """
        import numpy as np

        ranks = _ranks if _ranks is not None \
            else self.shard_counts().get(count, [])
        if 0 not in ranks:
            return None
        try:
            root = self.shard(0).read(count)
        except (SnapshotCorrupt, OSError):
            return None
        # shard 0's metadata names the membership that saved this count;
        # surplus shard files (an earlier, wider run at the same count)
        # are ignored, a missing member makes the set incomplete.
        nranks = int(root.meta.get("nranks", len(ranks)))
        if not set(range(nranks)) <= set(ranks):
            return None
        try:
            shards = [root] + self._read_shards(count, nranks)
        except (SnapshotCorrupt, OSError):
            return None
        fields: dict = {}
        for name, value in root.fields.items():
            part = (partitioned or {}).get(name)
            if part is None or part.whole_at_safepoints \
                    or not isinstance(value, np.ndarray):
                fields[name] = value  # replicated: any shard's copy is it
                continue
            whole = value.copy()
            axis = part.layout.axis
            n = whole.shape[axis]
            sl: list = [slice(None)] * whole.ndim
            for r, sh in enumerate(shards):
                idx = part.layout.owned(n, r, nranks)
                sl[axis] = idx
                whole[tuple(sl)] = np.take(sh.fields[name], idx, axis=axis)
            fields[name] = whole
        snap = Snapshot(app=root.app, safepoint_count=count, fields=fields,
                        mode=root.mode, meta=dict(root.meta))
        snap.meta["assembled_from_shards"] = nranks
        snap.meta["disk_nbytes"] = sum(
            int(sh.meta.get("disk_nbytes", sh.nbytes)) for sh in shards)
        snap.meta.pop("shard", None)
        return snap

    def _read_shards(self, count: int, nranks: int) -> "list[Snapshot]":
        """Read shards 1..nranks-1 (hook: the CAS store parallelises)."""
        return [self.shard(r).read(count) for r in range(1, nranks)]

    def assemble_latest_from_shards(self, partitioned: dict | None = None
                                    ) -> Snapshot | None:
        """Newest safe point whose complete shard set reassembles.

        One directory scan serves every candidate count (the scan is
        O(files); re-listing per count would make long-run recovery
        quadratic in the number of checkpoints).
        """
        by_count = self.shard_counts()
        for count in sorted(by_count, reverse=True):
            snap = self.assemble_from_shards(count, partitioned,
                                             _ranks=by_count[count])
            if snap is not None:
                return snap
        return None

    # ------------------------------------------------------------------
    def _protected_counts(self, kept: list[int]) -> set[int]:
        """Counts that must survive a prune (hook for delta chains)."""
        return set(kept)

    def prune(self, keep: int = 1) -> None:
        """Delete all but the ``keep`` newest checkpoints.

        Incremental stores additionally keep every file a survivor's
        delta chain depends on (see :meth:`_protected_counts`).
        """
        if keep < 0:
            raise ValueError("keep must be >= 0")
        self.flush()  # never prune around an in-flight write
        counts = self.counts()
        kept = counts[max(0, len(counts) - keep):]
        needed = self._protected_counts(kept)
        for c in counts:
            if c in needed:
                continue
            try:
                self.path_for(c).unlink()
            except OSError:
                pass

    def clear(self) -> None:
        self.prune(keep=0)
        if self.shard_suffix:
            return
        # reset live shard sub-stores (delta baselines included), then
        # sweep leftover shard files from ranks of earlier runs.
        with self._shard_lock:
            shards = list(self._shards.values())
        for sub in shards:
            sub.clear()
        for name in os.listdir(self.dir):
            m = self._any_re.match(name)
            if m and m.group(2):
                try:
                    (self.dir / name).unlink()
                except OSError:
                    pass


class RunLedger:
    """Start/finish status of the application across executions."""

    RUNNING = "running"
    COMPLETED = "completed"
    FRESH = "fresh"

    def __init__(self, directory: str | os.PathLike,
                 name: str = "run_status.json") -> None:
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.path = self.dir / name

    # ------------------------------------------------------------------
    def status(self) -> str:
        if not self.path.exists():
            return self.FRESH
        try:
            return json.loads(self.path.read_text()).get("status", self.FRESH)
        except (json.JSONDecodeError, OSError):
            # a torn status write is itself evidence of a crash
            return self.RUNNING

    def previous_run_failed(self) -> bool:
        """The pcr start-up check: did the last execution crash?"""
        return self.status() == self.RUNNING

    def attempts(self) -> int:
        if not self.path.exists():
            return 0
        try:
            return int(json.loads(self.path.read_text()).get("attempts", 0))
        except (json.JSONDecodeError, OSError):
            return 0

    # ------------------------------------------------------------------
    def mark_running(self) -> None:
        self._write({"status": self.RUNNING, "attempts": self.attempts() + 1})

    def mark_completed(self) -> None:
        self._write({"status": self.COMPLETED, "attempts": self.attempts()})

    def reset(self) -> None:
        if self.path.exists():
            self.path.unlink()

    def _write(self, payload: dict) -> None:
        # fsync before the rename (and the directory after), matching
        # CheckpointStore: the status file exists precisely to survive
        # crashes, so it must not itself be tearable by one.
        atomic_write_bytes(self.path, json.dumps(payload).encode())
