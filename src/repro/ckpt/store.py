"""Checkpoint storage and the run-status ledger (the ``pcr`` module).

:class:`CheckpointStore` keeps numbered checkpoint files in a directory,
written atomically (temp file + rename) so a crash mid-write can never
leave a half-checkpoint that a restart would trust; corrupt files are
detected by the snapshot's checksums and skipped in favour of the newest
intact one.

:class:`RunLedger` implements the paper's start-up protocol: "at
application start-up, the pcr module verifies if the last execution was
concluded without failures".  A run marks itself ``running`` on entry and
``completed`` on clean exit; finding ``running`` on the next start means
the previous execution crashed and replay mode is activated.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path

from repro.ckpt.snapshot import Snapshot, SnapshotCorrupt

_CKPT_RE = re.compile(r"^ckpt_(\d{9})\.pcr$")


class CheckpointStore:
    """Directory of numbered, atomically-written checkpoint files."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        #: bytes written by the most recent :meth:`write` (cost accounting).
        self.last_write_nbytes = 0

    # ------------------------------------------------------------------
    def path_for(self, count: int) -> Path:
        return self.dir / f"ckpt_{count:09d}.pcr"

    def write(self, snap: Snapshot) -> Path:
        """Atomically persist ``snap``; returns the final path."""
        data = snap.encode()
        self.last_write_nbytes = len(data)
        final = self.path_for(snap.safepoint_count)
        fd, tmp = tempfile.mkstemp(dir=self.dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, final)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return final

    def counts(self) -> list[int]:
        """Safe-point counts of all stored checkpoints, ascending."""
        out = []
        for name in os.listdir(self.dir):
            m = _CKPT_RE.match(name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def read(self, count: int) -> Snapshot:
        return Snapshot.decode(self.path_for(count).read_bytes())

    def read_latest(self) -> Snapshot | None:
        """Newest *intact* snapshot, or None.

        Corrupt files (torn by a crash, flipped bits) are skipped, so
        recovery degrades to an older checkpoint instead of failing.
        """
        for count in reversed(self.counts()):
            try:
                return self.read(count)
            except (SnapshotCorrupt, OSError):
                continue
        return None

    def prune(self, keep: int = 1) -> None:
        """Delete all but the ``keep`` newest checkpoints."""
        if keep < 0:
            raise ValueError("keep must be >= 0")
        counts = self.counts()
        for c in counts[: max(0, len(counts) - keep)]:
            try:
                self.path_for(c).unlink()
            except OSError:
                pass

    def clear(self) -> None:
        self.prune(keep=0)


class RunLedger:
    """Start/finish status of the application across executions."""

    RUNNING = "running"
    COMPLETED = "completed"
    FRESH = "fresh"

    def __init__(self, directory: str | os.PathLike) -> None:
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.path = self.dir / "run_status.json"

    # ------------------------------------------------------------------
    def status(self) -> str:
        if not self.path.exists():
            return self.FRESH
        try:
            return json.loads(self.path.read_text()).get("status", self.FRESH)
        except (json.JSONDecodeError, OSError):
            # a torn status write is itself evidence of a crash
            return self.RUNNING

    def previous_run_failed(self) -> bool:
        """The pcr start-up check: did the last execution crash?"""
        return self.status() == self.RUNNING

    def attempts(self) -> int:
        if not self.path.exists():
            return 0
        try:
            return int(json.loads(self.path.read_text()).get("attempts", 0))
        except (json.JSONDecodeError, OSError):
            return 0

    # ------------------------------------------------------------------
    def mark_running(self) -> None:
        self._write({"status": self.RUNNING, "attempts": self.attempts() + 1})

    def mark_completed(self) -> None:
        self._write({"status": self.COMPLETED, "attempts": self.attempts()})

    def reset(self) -> None:
        if self.path.exists():
            self.path.unlink()

    def _write(self, payload: dict) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.dir, suffix=".tmp")
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, self.path)
