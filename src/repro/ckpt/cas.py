"""The checkpoint object store: chunk recipes over a dedup CAS.

:class:`CasCheckpointStore` keeps checkpoint *payloads* out of the
checkpoint *files*.  Each field's portable encoding is split at
content-defined boundaries (:mod:`repro.ckpt.chunker`) and the pieces
land in a :class:`ChunkStore` — one file per distinct chunk, keyed by
content digest.  The checkpoint file itself becomes a **recipe**: the
ordinary envelope container with no sections, whose header maps every
field to its ordered ``(digest, length)`` chunk refs.

What that buys over the delta store:

* **sub-field writes** — touch one array element and only the chunks
  around it get new digests; the rest of the field re-references bytes
  already on disk.  The delta store's unit of change is a whole field.
* **cross-everything dedup** — the CAS is shared by the master store,
  its per-rank shards, and every job namespace in the directory.  A
  STRATEGY_LOCAL save writes one full-shape array per rank; the
  regions a rank doesn't own are byte-identical across shards and
  store once.  A second job checkpointing the same state stores almost
  nothing.
* **self-contained restores** — a recipe needs no chain: any recipe
  plus the CAS is a complete state, so corruption never cascades and
  chunk fetches parallelise freely (:meth:`CasCheckpointStore.read`
  fans out over a small thread pool; shard reassembly fans out over
  shards too).

Unchanged fields are detected by the delta store's value hash — one
streaming pass off the array buffer, against the previous write's
baseline — so steady-state saves re-chunk only the fields that moved;
everything else is a recipe ref reuse with zero hashing of chunk
bytes.

Durability ordering: chunk files are written (each atomically) before
the recipe that references them, so a crash can orphan chunks but
never publish a recipe with missing bytes.  Orphans are reclaimed by
:meth:`CasCheckpointStore.gc` — mark (scan every recipe file in the
directory, namespaces and shards included) and sweep (delete chunks
nothing references).  The in-memory refcounts are bookkeeping for the
fast path and the stats surface; the disk scan is authoritative, so GC
is correct across process restarts and crashes.  GC runs on anchor
retirement (:meth:`prune`/:meth:`clear`) and on service job-namespace
teardown.

Every chunk read is digest-verified after decompression, so a flipped
bit on disk is detected *per chunk* and named per field
(:meth:`verify`); ``read_latest`` then degrades to the previous
checkpoint exactly as it does for a torn full snapshot.
"""

from __future__ import annotations

import os
import re
import threading
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from time import perf_counter
from typing import Any, Iterable

from repro.ckpt.chunker import DEFAULT_PARAMS, ChunkParams, chunk_digest, chunk_refs
from repro.ckpt.delta import content_hash_value
from repro.ckpt.snapshot import (
    KIND_FULL,
    KIND_RECIPE,
    Snapshot,
    SnapshotCorrupt,
    decode_envelope,
    encode_container,
)
from repro.ckpt.store import CheckpointStore
from repro.ckpt.writer import atomic_write_bytes
from repro.util.serialization import dumps_portable, loads_portable, pack_section, unpack_section

#: any recipe/checkpoint file in a shared directory — master, namespaced
#: and sharded forms alike.  GC's mark phase scans them all: the CAS
#: under a directory is one store for every sub-store above it.
_ANY_PCR_RE = re.compile(r"^ckpt_\d{9}(\.j\w+)?(\.r\d+)?\.pcr$")

#: restore fan-out width.  Checkpoint chunks are a few KiB each, so the
#: win is overlapping read syscalls and zlib inflate; a handful of
#: threads saturates that long before it saturates a disk.
FETCH_WORKERS = 4


class ChunkCorrupt(SnapshotCorrupt):
    """A chunk is missing, torn, or fails its content digest."""


class ChunkStore:
    """Flat content-addressed chunk files under ``<dir>``.

    One file per distinct chunk at ``<digest[:2]>/<digest>.chunk``: a
    flag byte (the section transform negotiated by
    :func:`~repro.util.serialization.pack_section`) followed by the
    stored payload.  Writes are atomic and idempotent — the digest IS
    the identity, so concurrent writers of the same chunk race
    harmlessly to identical bytes.  Thread-safe throughout; reads are
    digest-verified after undoing the storage transform.
    """

    def __init__(self, directory: str | os.PathLike,
                 compress_min_bytes: int | None = None) -> None:
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.compress_min_bytes = compress_min_bytes
        self._lock = threading.Lock()
        #: live references: digest -> times referenced by written
        #: recipes.  Advisory (rebuilt by every GC mark phase).
        self._refs: Counter[str] = Counter()
        # cumulative traffic counters (the telemetry surface).
        self.chunks_stored = 0
        self.bytes_stored = 0
        self.chunks_deduped = 0
        self.bytes_deduped = 0
        self.chunks_swept = 0
        self.bytes_swept = 0

    # ------------------------------------------------------------------
    def path_for(self, digest: str) -> Path:
        return self.dir / digest[:2] / f"{digest}.chunk"

    def has(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def missing(self, digests: Iterable[str]) -> list[str]:
        """The subset of ``digests`` not yet stored (order kept, deduped)."""
        out, seen = [], set()
        for d in digests:
            if d not in seen and not self.has(d):
                out.append(d)
            seen.add(d)
        return out

    # ------------------------------------------------------------------
    def put(self, digest: str, payload) -> tuple[bool, int]:
        """Store one chunk; returns ``(newly_stored, stored_nbytes)``.

        A present digest is a dedup hit: nothing is written, the raw
        length counts as bytes saved.
        """
        path = self.path_for(digest)
        if path.exists():
            with self._lock:
                self.chunks_deduped += 1
                self.bytes_deduped += len(payload)
            return False, path.stat().st_size
        flags, stored = pack_section(bytes(payload), self.compress_min_bytes)
        data = bytes([flags]) + stored
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(path, data)
        with self._lock:
            self.chunks_stored += 1
            self.bytes_stored += len(data)
        return True, len(data)

    def fetch(self, digest: str) -> tuple[bytes, int]:
        """One chunk's payload and its stored (on-disk) size.

        Raises :class:`ChunkCorrupt` when the file is absent, torn, or
        its decompressed bytes no longer hash to ``digest``.
        """
        try:
            data = self.path_for(digest).read_bytes()
        except OSError as exc:
            raise ChunkCorrupt(f"chunk {digest} missing from CAS") from exc
        if not data:
            raise ChunkCorrupt(f"chunk {digest} is empty on disk")
        try:
            payload = unpack_section(data[0], data[1:])
        except Exception as exc:  # zlib.error on a flipped bit
            raise ChunkCorrupt(
                f"chunk {digest} failed to decode: {exc}") from exc
        if chunk_digest(payload) != digest:
            raise ChunkCorrupt(f"chunk {digest} failed content verification")
        return payload, len(data)

    def get(self, digest: str) -> bytes:
        return self.fetch(digest)[0]

    # ------------------------------------------------------------------
    def incref(self, digests: Iterable[str]) -> None:
        with self._lock:
            self._refs.update(digests)

    def decref(self, digests: Iterable[str]) -> None:
        with self._lock:
            self._refs.subtract(digests)
            self._refs += Counter()  # drop keys at zero

    def refcount(self, digest: str) -> int:
        with self._lock:
            return self._refs[digest]

    # ------------------------------------------------------------------
    def digests(self) -> set[str]:
        """Every chunk currently on disk."""
        out = set()
        for sub in self.dir.iterdir():
            if not sub.is_dir():
                continue
            for f in sub.iterdir():
                if f.suffix == ".chunk":
                    out.add(f.stem)
        return out

    def stored_bytes(self) -> int:
        """On-disk footprint of every stored chunk."""
        total = 0
        for sub in self.dir.iterdir():
            if not sub.is_dir():
                continue
            for f in sub.iterdir():
                if f.suffix == ".chunk":
                    try:
                        total += f.stat().st_size
                    except OSError:
                        pass
        return total

    def sweep(self, live: set[str]) -> tuple[int, int]:
        """Delete every chunk not in ``live``; ``(chunks, bytes)`` freed.

        The refcounts are reset to the mark result — the disk scan, not
        the counter, decides what dies, so a counter lost to a restart
        can never leak or over-free chunks.
        """
        n = nbytes = 0
        for digest in self.digests() - live:
            path = self.path_for(digest)
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            n += 1
            nbytes += size
        with self._lock:
            self._refs = Counter({d: c for d, c in self._refs.items()
                                  if d in live and c > 0})
            self.chunks_swept += n
            self.bytes_swept += nbytes
        return n, nbytes


class CasCheckpointStore(CheckpointStore):
    """Checkpoint store writing chunk recipes against a shared CAS.

    Drop-in for :class:`~repro.ckpt.store.CheckpointStore`: same file
    naming, pruning, shard and namespace mechanics — but ``write``
    emits a recipe plus the chunks the CAS lacks, and ``read`` fetches
    and verifies chunks on a thread pool.  Shards and namespaces share
    the parent's :class:`ChunkStore`, which is where the cross-rank and
    cross-job dedup comes from.
    """

    def __init__(self, directory: str | os.PathLike,
                 chunk_params: ChunkParams = DEFAULT_PARAMS,
                 compress_min_bytes: int | None = None,
                 shard_suffix: str = "", ns_suffix: str = "",
                 cas: ChunkStore | None = None,
                 fetch_workers: int = FETCH_WORKERS) -> None:
        super().__init__(directory, compress_min_bytes=compress_min_bytes,
                         shard_suffix=shard_suffix, ns_suffix=ns_suffix)
        #: boundary policy — also shipped to funnel workers so they chunk
        #: identically to the parent (digest equality is the protocol).
        self.chunk_params = chunk_params
        self.cas = cas if cas is not None \
            else ChunkStore(self.dir / "cas",
                            compress_min_bytes=compress_min_bytes)
        self.fetch_workers = max(1, fetch_workers)
        #: change-detection baseline: field -> (value hash, chunk refs).
        #: Volatile, like the delta store's — losing it to a restart
        #: just means the next write re-chunks everything it still has.
        self._base: dict[str, tuple[bytes, list[tuple[str, int]]]] = {}
        #: per-write stats (mirrored into telemetry by the context).
        self.last_write_stats: dict[str, int] | None = None
        #: restore-side counters (scraped as runtime gauges).
        self.last_restore_fetches = 0
        self.restore_fetches_total = 0
        self.restore_seconds_total = 0.0

    # ------------------------------------------------------------------
    def _make_shard(self, rank: int) -> "CasCheckpointStore":
        return CasCheckpointStore(
            self.dir, chunk_params=self.chunk_params,
            compress_min_bytes=self.compress_min_bytes,
            shard_suffix=f".r{rank}", ns_suffix=self.ns_suffix,
            cas=self.cas, fetch_workers=self.fetch_workers)

    def _make_namespace(self, ns_suffix: str) -> "CasCheckpointStore":
        return CasCheckpointStore(
            self.dir, chunk_params=self.chunk_params,
            compress_min_bytes=self.compress_min_bytes,
            ns_suffix=ns_suffix, cas=self.cas,
            fetch_workers=self.fetch_workers)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def write(self, snap: Snapshot) -> Path:
        from repro.trace import schema as _tc
        from repro.trace.plane import tracer as trace_writer

        tr = trace_writer()
        tw0 = perf_counter() if tr.active else 0.0
        stats = {"chunks_new": 0, "chunks_dedup": 0, "dedup_saved_bytes": 0}
        new_bytes = 0
        recipe: dict[str, list[list]] = {}
        base: dict[str, tuple[bytes, list[tuple[str, int]]]] = {}
        for name, value in snap.fields.items():
            vhash = content_hash_value(value)
            cached = self._base.get(name)
            if cached is not None and cached[0] == vhash:
                # unchanged field: reuse the previous recipe's refs —
                # no encode, no re-chunk, no per-chunk hashing.
                refs = cached[1]
                stats["chunks_dedup"] += len(refs)
                stats["dedup_saved_bytes"] += sum(ln for _, ln in refs)
            else:
                blob = dumps_portable(value)
                mv = memoryview(blob)
                refs = []
                for digest, a, b in chunk_refs(blob, self.chunk_params):
                    new, stored = self.cas.put(digest, mv[a:b])
                    if new:
                        stats["chunks_new"] += 1
                        new_bytes += stored
                    else:
                        stats["chunks_dedup"] += 1
                        stats["dedup_saved_bytes"] += b - a
                    refs.append((digest, b - a))
            recipe[name] = [[d, ln] for d, ln in refs]
            base[name] = (vhash, [(d, ln) for d, ln in refs])
        self._base = base
        path = self._commit_recipe(snap.header(KIND_RECIPE), recipe,
                                   snap.safepoint_count, new_bytes, stats)
        if tr.active:
            tr.span(_tc.CKPT_CHUNK, tw0,
                    a=float(stats["chunks_new"]),
                    b=float(stats["chunks_dedup"]))
        return path

    def _commit_recipe(self, header: dict, recipe: dict,
                       count: int, new_chunk_bytes: int,
                       stats: dict[str, int]) -> Path:
        """Persist one recipe (chunks are already durable) + accounting."""
        header["recipe"] = recipe
        header["fields"] = list(recipe)
        data = encode_container(header, {}, None)
        self.cas.incref(d for refs in recipe.values() for d, _ in refs)
        # what this checkpoint actually cost the disk: the recipe plus
        # only the chunks that weren't already stored.
        self.last_write_nbytes = len(data) + new_chunk_bytes
        self.last_write_kind = KIND_RECIPE
        self.total_bytes_written += self.last_write_nbytes
        self.last_write_stats = dict(stats)
        self._put(self.path_for(count), data)
        return self.path_for(count)

    def write_chunked(self, header: dict, recipe: dict,
                      chunks: dict[str, bytes]) -> Path:
        """Funnel ingest: a worker-chunked recipe + the missing chunks.

        ``chunks`` carries only the payloads the worker's presence
        handshake found absent; each is digest-verified before storage
        (the funnel crosses process/wire boundaries).  A referenced
        digest that is neither stored nor shipped — the handshake lost
        a race against GC — raises :class:`ChunkCorrupt`, which the
        worker answers by resending everything.
        """
        stats = {"chunks_new": 0, "chunks_dedup": 0, "dedup_saved_bytes": 0}
        new_bytes = 0
        for digest, payload in chunks.items():
            if chunk_digest(payload) != digest:
                raise ChunkCorrupt(
                    f"funnelled chunk {digest} failed content verification")
            new, stored = self.cas.put(digest, payload)
            if new:
                stats["chunks_new"] += 1
                new_bytes += stored
        for name, refs in recipe.items():
            for digest, length in refs:
                if digest in chunks:
                    continue
                if not self.cas.has(digest):
                    raise ChunkCorrupt(
                        f"CAS_CHUNK_MISSING: chunk {digest} of field "
                        f"{name!r} vanished between handshake and write")
                stats["chunks_dedup"] += 1
                stats["dedup_saved_bytes"] += length
        # worker-side recipes can't seed this store's baseline (the
        # value hashes live with the worker), so drop any stale one.
        self._base = {}
        return self._commit_recipe(header, recipe,
                                   int(header["safepoint_count"]),
                                   new_bytes, stats)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def read(self, count: int) -> Snapshot:
        data = self.path_for(count).read_bytes()
        header, _sections = decode_envelope(data)
        if header.get("kind", KIND_FULL) != KIND_RECIPE:
            # plain files (a store switched to CAS mid-directory) still
            # read; their payload is inline, not chunked.
            snap = Snapshot.decode(data)
            snap.meta["disk_nbytes"] = len(data)
            return snap
        from repro.trace import schema as _tc
        from repro.trace.plane import tracer as trace_writer

        tr = trace_writer()
        tw0 = perf_counter() if tr.active else 0.0
        t0 = perf_counter()
        recipe = header.get("recipe")
        if not isinstance(recipe, dict):
            raise SnapshotCorrupt(f"recipe missing from checkpoint {count}")
        payloads, stored_nbytes = self._fetch_chunks(
            {d for refs in recipe.values() for d, _ in refs})
        fields: dict[str, Any] = {}
        for name in header["fields"]:
            parts = [payloads[d] for d, _ in recipe[name]]
            for part in parts:
                if isinstance(part, self._Missing):
                    raise SnapshotCorrupt(
                        f"field {name!r} of checkpoint {count} lost a "
                        f"chunk: {part.exc}") from part.exc
            try:
                fields[name] = loads_portable(b"".join(parts))
            except Exception as exc:
                raise SnapshotCorrupt(
                    f"field {name!r} of checkpoint {count} failed to "
                    f"decode: {exc}") from exc
        self.last_restore_fetches = len(payloads)
        self.restore_fetches_total += len(payloads)
        self.restore_seconds_total += perf_counter() - t0
        snap = Snapshot(app=header["app"],
                        safepoint_count=header["safepoint_count"],
                        fields=fields, mode=header["mode"],
                        meta=header["meta"])
        snap.meta["disk_nbytes"] = len(data) + stored_nbytes
        snap.meta["cas_fetches"] = len(payloads)
        if tr.active:
            tr.span(_tc.CKPT_FETCH, tw0, a=float(len(payloads)),
                    b=float(count))
        return snap

    class _Missing:
        """Sentinel carrying the fetch failure for one digest."""

        def __init__(self, exc: ChunkCorrupt) -> None:
            self.exc = exc

    def _fetch_chunks(self, digests: set[str]
                      ) -> tuple[dict[str, bytes], int]:
        """Fetch unique chunks on the pool; ``(digest -> payload, bytes)``.

        A failed chunk maps to a :class:`_Missing` sentinel so one bad
        chunk poisons only the fields that reference it — the caller
        decides per field.
        """
        payloads: dict[str, Any] = {}
        stored = 0
        ordered = sorted(digests)
        with ThreadPoolExecutor(
                max_workers=min(self.fetch_workers, max(1, len(ordered))),
                thread_name_prefix="cas-fetch") as pool:
            for digest, result in zip(ordered,
                                      pool.map(self._fetch_one, ordered)):
                if isinstance(result, self._Missing):
                    payloads[digest] = result
                else:
                    payloads[digest] = result[0]
                    stored += result[1]
        return payloads, stored

    def _fetch_one(self, digest: str):
        try:
            return self.cas.fetch(digest)
        except ChunkCorrupt as exc:
            return self._Missing(exc)

    def _read_shards(self, count: int, nranks: int) -> list[Snapshot]:
        """Shard reassembly fan-out: all non-root shards in parallel.

        Each shard read already parallelises its own chunk fetches; the
        outer pool overlaps the per-shard recipe decode and field
        assembly on top.
        """
        if nranks <= 2:
            return super()._read_shards(count, nranks)
        with ThreadPoolExecutor(
                max_workers=min(self.fetch_workers, nranks - 1),
                thread_name_prefix="cas-shard") as pool:
            return list(pool.map(lambda r: self.shard(r).read(count),
                                 range(1, nranks)))

    # ------------------------------------------------------------------
    def verify(self, count: int) -> list[str]:
        """Names of fields whose chunks fail verification at ``count``.

        The corruption-isolation contract: flipping one byte of one
        stored chunk damages exactly the fields referencing that chunk
        — everything else still restores.
        """
        header, _ = decode_envelope(self.path_for(count).read_bytes())
        if header.get("kind", KIND_FULL) != KIND_RECIPE:
            return []
        recipe = header["recipe"]
        bad: set[str] = set()
        for digest in {d for refs in recipe.values() for d, _ in refs}:
            try:
                self.cas.fetch(digest)
            except ChunkCorrupt:
                bad.add(digest)
        return sorted(name for name, refs in recipe.items()
                      if any(d in bad for d, _ in refs))

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def live_digests(self) -> set[str]:
        """Mark phase: every digest any recipe in the directory needs.

        Scans *all* checkpoint files — other namespaces' and shards'
        included — because the CAS is shared by all of them; a digest is
        dead only when nobody at all references it.
        """
        live: set[str] = set()
        for name in os.listdir(self.dir):
            if not _ANY_PCR_RE.match(name):
                continue
            try:
                header, _ = decode_envelope((self.dir / name).read_bytes())
            except (SnapshotCorrupt, OSError):
                continue  # torn recipe: its refs die with it
            for refs in header.get("recipe", {}).values():
                live.update(d for d, _ in refs)
        return live

    def gc(self) -> tuple[int, int]:
        """Mark-and-sweep unreferenced chunks; ``(chunks, bytes)`` freed."""
        from repro.trace import schema as _tc
        from repro.trace.plane import tracer as trace_writer

        tr = trace_writer()
        tw0 = perf_counter() if tr.active else 0.0
        self.flush()  # recipes queued on an async writer must count
        swept = self.cas.sweep(self.live_digests())
        if tr.active:
            tr.span(_tc.CKPT_GC, tw0, a=float(swept[0]), b=float(swept[1]))
        return swept

    def unreferenced(self) -> set[str]:
        """Chunks on disk no recipe references (empty unless GC is due)."""
        return self.cas.digests() - self.live_digests()

    def prune(self, keep: int = 1) -> None:
        super().prune(keep)
        self.gc()

    def clear(self) -> None:
        super().clear()
        self._base = {}
        self.gc()
