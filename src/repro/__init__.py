"""repro — pluggable parallelisation with checkpointing and run-time
adaptation.

A from-scratch Python reproduction of Medeiros & Sobral, "Checkpoint and
Run-Time Adaptation with Pluggable Parallelisation" (ICPP 2011):

* write plain sequential domain classes;
* declare parallelisation, checkpointing and adaptation concerns in
  separate, composable :class:`~repro.core.PlugSet` modules;
* weave with :func:`~repro.core.plug` and execute the same code base
  sequentially, on a thread team, on a (simulated) cluster, or hybrid —
  with application-level checkpointing and run-time reshaping for free.

Subpackages: :mod:`repro.core` (templates/weaver/runtime),
:mod:`repro.smp` (thread teams), :mod:`repro.dsm` (simulated cluster),
:mod:`repro.ckpt` (checkpointing), :mod:`repro.vtime` (virtual time),
:mod:`repro.grid` (resource volatility), :mod:`repro.apps` (JGF-style
workloads), :mod:`repro.baselines` (invasive/fixed/over-decomposed
comparators).
"""

from repro.core import (
    AdaptStep,
    AdaptationPlan,
    ExecConfig,
    Mode,
    PlugSet,
    RunResult,
    Runtime,
    plug,
    unplug,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptStep",
    "AdaptationPlan",
    "ExecConfig",
    "Mode",
    "PlugSet",
    "RunResult",
    "Runtime",
    "__version__",
    "plug",
    "unplug",
]
