"""Parent-side trace assembly: rings -> Chrome trace-event JSON.

The binary rings hold fixed-width records with integer name codes; this
module re-attaches names and emits the Chrome trace-event format that
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` load
directly:

* one **track per rank** (``pid`` = rank + 1; the driver loop gets its
  own ``pid`` 0 track), named via ``process_name`` metadata events;
* **spans** as matched ``B``/``E`` duration events.  Rings store one
  record per *finished* span (written at span end, so a wrapped ring
  never strands an unmatched ``B``), and the assembler reconstructs the
  nesting from the intervals — exact containment is guaranteed because
  spans on one rank come from one call stack;
* **instants** (``ph: "i"``) for point events, including every
  :class:`~repro.util.events.Event` of the run's log (satellite of the
  one-source-timeline unification);
* **flow arrows** for cross-rank messages: a ``send`` record opens flow
  ``src.seq`` on the sender's track, the matching ``recv`` record —
  whose slice duration is the receiver's wait — closes it with a
  ``bp: "e"`` bind.  Arrows are emitted only when both ends survived
  their rings, so every flow in the document is well-formed;
* **vtime in args**: every span carries the virtual clock alongside the
  wall interval, which is how wall timelines stay anchored to the
  deterministic results.

``validate_chrome_trace`` is the schema gate CI and the tests run over
every emitted document.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.trace import schema as _sc
from repro.trace.plane import TracePlane

#: arg names for the first payload words of each span/instant code
#: (fallback: generic "a"/"b").
_ARG_NAMES: dict[int, tuple[str, ...]] = {
    _sc.PHASE: ("vtime", "attempt"),
    _sc.SAFEPOINT: ("vtime", "count"),
    _sc.CHECKPOINT: ("vtime", "count"),
    _sc.CHECKPOINT_LOCAL: ("vtime", "count"),
    _sc.CAPTURE: ("vtime", "count"),
    _sc.CKPT_WRITE: ("nbytes",),
    _sc.CKPT_FLUSH: ("pending",),
    _sc.CKPT_FUNNEL: ("nbytes",),
    _sc.RESTORE: ("vtime", "count"),
    _sc.ADAPT_EXIT: ("vtime", "count"),
    _sc.TEAM_RESIZE: ("vtime", "workers"),
    _sc.MOVES: ("vtime", "count"),
    _sc.RENDEZVOUS: ("vtime", "count"),
    _sc.SWITCH: ("vtime", "nranks"),
    _sc.TCP_FRAME: ("dst", "nbytes"),
}

_KIND_NAMES = {_sc.KIND_SPAN: "span", _sc.KIND_INSTANT: "instant",
               _sc.KIND_SEND: "send", _sc.KIND_RECV: "recv"}


def _track(rank: int) -> tuple[int, str]:
    """(pid, display name) of one rank's track (-1 is the driver)."""
    if rank < 0:
        return 0, "driver"
    return rank + 1, f"rank {rank}"


def _span_args(code: int, a: float, b: float) -> dict:
    names = _ARG_NAMES.get(code, ("a", "b"))
    args = {names[0]: a}
    if len(names) > 1:
        args[names[1]] = b
    return args


class TraceAssembler:
    """Accumulates per-rank records; emits one Chrome trace document."""

    def __init__(self) -> None:
        self.by_rank: dict[int, list[tuple]] = {}

    def add(self, rank: int, records: list[tuple]) -> None:
        self.by_rank.setdefault(rank, []).extend(records)

    # ------------------------------------------------------------------
    def emit(self, events=None, extra: dict | None = None) -> dict:
        """The Chrome trace-event document (``json.dump``-ready)."""
        spans: dict[int, list[tuple]] = {}     # pid -> (t0, end, name, args)
        instants: list[tuple] = []             # (pid, t, name, args)
        # (src, tag, epoch, seq) -> [(pid, t0, dst), ...].  A list, not
        # a single slot: a restarted launch re-counts seq from zero, so
        # the full id can legitimately repeat within one run's records.
        sends: dict[tuple, list[tuple]] = {}
        recvs: list[tuple] = []
        times: list[float] = []
        for rank, records in self.by_rank.items():
            pid, _ = _track(rank)
            for rec in records:
                _g, kind, code, t0, dur, a, b, c, d = rec
                code = int(code)
                times.append(t0)
                if kind == _sc.KIND_SPAN:
                    spans.setdefault(pid, []).append(
                        (t0, t0 + dur, _sc.name_of(code),
                         _span_args(code, a, b)))
                elif kind == _sc.KIND_INSTANT:
                    instants.append((pid, t0, _sc.name_of(code),
                                     _span_args(code, a, b)))
                elif kind == _sc.KIND_SEND:
                    sends.setdefault(
                        (rank, int(b), int(c), int(d)), []).append(
                        (pid, t0, int(a)))
                elif kind == _sc.KIND_RECV:
                    recvs.append((pid, t0, t0 + dur,
                                  int(a), int(b), int(c), int(d)))
        ev_list = list(events) if events is not None else []
        for ev in ev_list:
            wall = getattr(ev, "wall", 0.0)
            if wall > 0.0:
                times.append(wall)
        if not times:
            return {"traceEvents": [],
                    "displayTimeUnit": "ms",
                    "otherData": dict(extra or {})}
        tmin = min(times)

        def us(t: float) -> float:
            return round((t - tmin) * 1e6, 3)

        out: list[dict] = []
        pids = sorted({_track(r)[0] for r in self.by_rank})
        for rank in sorted(self.by_rank):
            pid, label = _track(rank)
            out.append({"name": "process_name", "ph": "M", "pid": pid,
                        "tid": 0, "args": {"name": label}})
        # -- spans: reconstruct B/E nesting from intervals -------------
        for pid, intervals in spans.items():
            out.extend(self._nested(pid, intervals, us))
        # -- instants --------------------------------------------------
        for pid, t, name, args in instants:
            out.append({"name": name, "ph": "i", "ts": us(t), "pid": pid,
                        "tid": 0, "s": "t", "args": args})
        # -- event-log instants (the unified Figure-6 timeline) --------
        for ev in ev_list:
            wall = getattr(ev, "wall", 0.0)
            if wall <= 0.0:
                continue
            pid, _ = _track(ev.rank)
            args = {"vtime": ev.vtime, "seq": getattr(ev, "seq", 0)}
            for k, v in ev.data.items():
                args[k] = v if isinstance(v, (int, float, str, bool)) \
                    else str(v)
            out.append({"name": ev.kind, "ph": "i", "ts": us(wall),
                        "pid": pid, "tid": 0, "s": "t", "args": args,
                        "cat": "event"})
        # -- message slices + flow arrows ------------------------------
        # each recv pairs with the closest preceding send of its full
        # message id (the true pair always satisfies send.t0 < recv
        # end); a send whose record was lapped out of its ring leaves
        # its recv without an arrow rather than mis-paired.
        fid_used: dict[str, int] = {}
        for pid, t0, t1, src, tag, epoch, seq in recvs:
            args = {"src": src, "tag": tag, "epoch": epoch, "seq": seq}
            out.append({"name": "recv", "ph": "X", "ts": us(t0),
                        "dur": max(us(t1) - us(t0), 0.001), "pid": pid,
                        "tid": 0, "cat": "msg", "args": args})
            candidates = sends.get((src, tag, epoch, seq), [])
            best = None
            for cand in candidates:
                if cand[1] < t1 and (best is None or cand[1] > best[1]):
                    best = cand
            if best is None:
                continue
            candidates.remove(best)
            spid, st, dst = best
            fid = f"{src}.{epoch}.{seq}"
            n = fid_used.get(fid, 0)
            fid_used[fid] = n + 1
            if n:
                fid = f"{fid}#{n}"
            out.append({"name": "send", "ph": "X", "ts": us(st),
                        "dur": 0.001, "pid": spid, "tid": 0, "cat": "msg",
                        "args": {"dst": dst, "tag": tag, "epoch": epoch,
                                 "seq": seq}})
            out.append({"name": "msg", "ph": "s", "cat": "flow", "id": fid,
                        "ts": us(st), "pid": spid, "tid": 0})
            out.append({"name": "msg", "ph": "f", "cat": "flow", "id": fid,
                        "bp": "e", "ts": us(t1), "pid": pid, "tid": 0})
        for (src, tag, epoch, seq), rest in sends.items():
            for spid, st, dst in rest:  # never matched by a recv
                out.append({"name": "send", "ph": "X", "ts": us(st),
                            "dur": 0.001, "pid": spid, "tid": 0,
                            "cat": "msg",
                            "args": {"dst": dst, "tag": tag,
                                     "epoch": epoch, "seq": seq}})
        out.sort(key=lambda e: (e.get("ts", -1.0), e["pid"]))
        other = {"tracks": len(pids)}
        other.update(extra or {})
        return {"traceEvents": out, "displayTimeUnit": "ms",
                "otherData": other}

    @staticmethod
    def _nested(pid: int, intervals: list[tuple], us) -> list[dict]:
        """Emit properly nested B/E pairs for one track's intervals.

        Spans on one rank come from one call stack, so the intervals
        are exactly nested (a child starts after and ends before its
        parent); sorting by (start, -length) and sweeping with a stack
        reproduces that nesting as balanced B/E events.
        """
        out: list[dict] = []
        stack: list[tuple] = []  # (end, name)
        for t0, t1, name, args in sorted(
                intervals, key=lambda iv: (iv[0], iv[0] - iv[1])):
            while stack and stack[-1][0] <= t0:
                end, ename = stack.pop()
                out.append({"name": ename, "ph": "E", "ts": us(end),
                            "pid": pid, "tid": 0})
            out.append({"name": name, "ph": "B", "ts": us(t0),
                        "pid": pid, "tid": 0, "args": args})
            stack.append((t1, name))
        while stack:
            end, ename = stack.pop()
            out.append({"name": ename, "ph": "E", "ts": us(end),
                        "pid": pid, "tid": 0})
        return out


class TraceCollector:
    """One run's trace state: ring capacity, scraped records, assembly.

    This is the object :class:`~repro.exec.base.PhaseServices` carries
    (``services.trace``): backends size their planes from
    ``capacity``, feed drain-time scrapes into :meth:`absorb`, and the
    driver loop writes its own phase spans through the dedicated
    ``driver`` writer (a process-local ring — the driver is not a rank,
    so it never competes with a rank's thread-local binding).

    ``flight=True`` is the flight-recorder mode: rings shrink to
    :data:`~repro.trace.schema.FLIGHT_CAPACITY` records so each rank's
    ring is a rolling black box, and :meth:`flight_snapshot` decodes
    the last moments of every rank for the failure report.
    """

    def __init__(self, flight: bool = False,
                 capacity: int | None = None) -> None:
        self.flight = bool(flight)
        self.capacity = int(capacity) if capacity else (
            _sc.FLIGHT_CAPACITY if flight else _sc.DEFAULT_CAPACITY)
        self._lock = threading.Lock()
        self.by_rank: dict[int, list[tuple]] = {}
        self.backends: list[str] = []
        #: flight-recorder black boxes the driver snapshotted at each
        #: failure of the run (one dict per failure, newest last).
        self.flights: list[dict] = []
        self._driver_plane = TracePlane.local(1)
        self.driver = self._driver_plane.writer(0)

    # ------------------------------------------------------------------
    def absorb(self, scraped: dict[int, list[tuple]],
               backend: str = "") -> None:
        """Fold one plane's drain-time scrape into the run's record."""
        with self._lock:
            for rank, records in scraped.items():
                self.by_rank.setdefault(rank, []).extend(records)
            if backend and backend not in self.backends:
                self.backends.append(backend)

    def _all_ranks(self) -> dict[int, list[tuple]]:
        """Accumulated rank records plus the driver's ring (rank -1).

        The driver ring is re-scraped (not accumulated): its records
        live in this process for the collector's whole life, so the
        scrape is always the complete, current picture.
        """
        with self._lock:
            out = {r: list(v) for r, v in self.by_rank.items()}
        drv = self._driver_plane.scrape(include_frozen=True).get(0)
        if drv:
            out[-1] = drv
        return out

    # ------------------------------------------------------------------
    def assemble(self, events=None) -> dict:
        """The run's Chrome trace-event document."""
        asm = TraceAssembler()
        for rank, records in self._all_ranks().items():
            asm.add(rank, records)
        extra: dict[str, Any] = {"backends": list(self.backends),
                                 "flight": self.flight}
        if self.flights:
            extra["flight_snapshots"] = list(self.flights)
        return asm.emit(events=events, extra=extra)

    def flight_snapshot(self, last_n: int = _sc.FLIGHT_LAST_N
                        ) -> dict[str, list[dict]]:
        """The black box: the last ``last_n`` decoded records per rank.

        Keys are rank numbers as strings (``"driver"`` for the parent
        loop — string keys keep the box JSON-embeddable); every rank
        that ever bound a writer appears — including a rank that died,
        whose ring survived it in the launch's segment.
        """
        out: dict[str, list[dict]] = {}
        for rank, records in self._all_ranks().items():
            decoded = [self._decode(rec) for rec in records[-last_n:]]
            out["driver" if rank < 0 else str(rank)] = decoded
        return out

    @staticmethod
    def _decode(rec: tuple) -> dict:
        g, kind, code, t0, dur, a, b, c, d = rec
        return {"gen": int(g), "kind": _KIND_NAMES.get(kind, "?"),
                "name": _sc.name_of(code), "t0": t0, "dur": dur,
                "args": (a, b, c, d)}


def validate_chrome_trace(doc: dict) -> dict:
    """Strict structural check of one Chrome trace-event document.

    Verifies the container shape, per-event required keys, balanced and
    properly nested ``B``/``E`` pairs per track, and well-formed flow
    bind points (every ``f`` closes a seen ``s`` of the same id, with
    ``bp: "e"``).  Raises :class:`ValueError` on the first violation;
    returns summary counts for assertions.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a trace document: no traceEvents")
    evs = doc["traceEvents"]
    if not isinstance(evs, list):
        raise ValueError("traceEvents must be a list")
    stacks: dict[tuple, list[str]] = {}
    flows_open: dict[str, int] = {}
    counts = {"events": len(evs), "spans": 0, "instants": 0, "flows": 0,
              "tracks": set()}
    for i, ev in enumerate(evs):
        for key in ("ph", "pid"):
            if key not in ev:
                raise ValueError(f"event {i}: missing {key!r}: {ev}")
        ph = ev["ph"]
        if ph != "E" and "name" not in ev:
            raise ValueError(f"event {i}: missing name: {ev}")
        if ph != "M":
            if "ts" not in ev:
                raise ValueError(f"event {i}: missing ts: {ev}")
            counts["tracks"].add((ev["pid"], ev.get("tid", 0)))
        track = (ev["pid"], ev.get("tid", 0))
        if ph == "B":
            stacks.setdefault(track, []).append(ev["name"])
            counts["spans"] += 1
        elif ph == "E":
            stack = stacks.get(track)
            if not stack:
                raise ValueError(f"event {i}: E without open B on {track}")
            stack.pop()
        elif ph == "i":
            counts["instants"] += 1
        elif ph == "X":
            if "dur" not in ev:
                raise ValueError(f"event {i}: X without dur: {ev}")
        elif ph == "s":
            if "id" not in ev:
                raise ValueError(f"event {i}: flow start without id")
            flows_open[ev["id"]] = i
        elif ph == "f":
            if "id" not in ev:
                raise ValueError(f"event {i}: flow finish without id")
            if ev["id"] not in flows_open:
                raise ValueError(
                    f"event {i}: flow finish {ev['id']!r} without start")
            if ev.get("bp") != "e":
                raise ValueError(
                    f"event {i}: flow finish must bind enclosing (bp='e')")
            del flows_open[ev["id"]]
            counts["flows"] += 1
        elif ph not in ("M", "t"):
            raise ValueError(f"event {i}: unknown phase {ph!r}")
    dangling = [t for t, stack in stacks.items() if stack]
    if dangling:
        raise ValueError(f"unbalanced B/E on tracks {dangling}")
    counts["tracks"] = len(counts["tracks"])
    return counts
