"""The shared-memory trace plane: per-rank ring buffers, lock-free writers.

One :class:`TracePlane` serves one world (one phase launch): a flat
``float64`` buffer of ``max_ranks`` fixed-layout rings (see
:mod:`repro.trace.schema`), backed by one dedicated shared-memory
segment for process substrates (``ppshm-<launch id>-trace``, swept by
the parent's deterministic-name cleanup like every other segment of the
launch) or a plain process-local array for thread substrates — the
scrape path is identical either way.

**Writer discipline** (the telemetry plane's, applied to a ring):

* each rank appends *only to its own ring*, so no write ever races
  another write — the plane needs no locks at all;
* every record carries a generation-stamped seqlock commit word: the
  writer stores ``2g+1`` (odd), fills the payload, stores ``2g+2``
  (even), then publishes the cursor.  A scraper that sees anything but
  the exact even stamp for generation ``g`` knows the slot is torn or
  lapped and drops it — live rings can be scraped mid-run and a
  half-written record can never escape;
* the ring wraps overwrite-oldest: record ``g`` lives in slot
  ``g % capacity``, so the newest ``capacity`` records always survive
  — which is the entire point of the flight-recorder mode;
* a ring header flag says whether the ring is empty, live, or frozen —
  a parked worker's ring is frozen (records stay visible for the
  drain-time scrape) until the rank is un-parked.

The tracer the hot paths see is bound **thread-locally**, exactly like
the telemetry writer: instrumented code calls :func:`tracer` and gets
either the bound rank's :class:`TraceWriter` or the shared no-op
:class:`NullTracer` — tracing off costs one attribute load and a
branch.  Nothing here ever touches a virtual clock: all timestamps are
wall-side (``perf_counter``, CLOCK_MONOTONIC on Linux — one epoch for
every process on the host, so cross-rank timestamps are directly
comparable), and results are bit-identical with tracing on or off.
"""

from __future__ import annotations

import threading
from time import perf_counter, sleep
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsm import shm

import numpy as np

from repro.trace.schema import (
    DEFAULT_CAPACITY,
    KIND_INSTANT,
    KIND_RECV,
    KIND_SEND,
    KIND_SPAN,
    RECORD_WORDS,
    RECV,
    RING_ACTIVE,
    RING_CURSOR,
    RING_FROZEN,
    RING_HEADER_WORDS,
    RING_SEQ,
    RING_STATE,
    SEND,
    ring_words,
)


def trace_name(launch_id: str) -> str:
    """The deterministic segment name of one launch's trace plane."""
    # imported here (and in create/attach below), not at module top:
    # shm's hot paths import this module's tracer, so the dependency
    # must stay one-way at import time.
    from repro.dsm import shm

    return f"{shm.SHM_PREFIX}-{launch_id}-trace"


class NullTracer:
    """The disabled hot path: every operation is a no-op.

    ``send`` returns sequence 0 — the "untraced" message id, which the
    receive side recognises and skips, so barrier plumbing and traced
    payload traffic coexist on one :class:`~repro.dsm.mailbox.Message`
    field.
    """

    active = False

    def instant(self, code: int, a: float = 0.0, b: float = 0.0,
                c: float = 0.0, d: float = 0.0) -> None:
        pass

    def span(self, code: int, t0: float, a: float = 0.0, b: float = 0.0,
             c: float = 0.0, d: float = 0.0) -> None:
        pass

    def send(self, dst: int, tag: int, epoch: int = 0) -> int:
        return 0

    def recv(self, src: int, tag: int, epoch: int, seq: int,
             t0: float) -> None:
        pass

    def freeze(self) -> None:
        pass

    def thaw(self) -> None:
        pass


NULL_TRACER = NullTracer()

_tl = threading.local()


def tracer() -> "TraceWriter | NullTracer":
    """The trace writer bound to the calling thread (no-op tracer
    outside an instrumented rank, or with tracing disabled)."""
    return getattr(_tl, "tracer", NULL_TRACER)


def bind(w: "TraceWriter | None") -> None:
    """Bind ``w`` as this thread's hot-path tracer (None unbinds)."""
    if w is None:
        _tl.tracer = NULL_TRACER
    else:
        _tl.tracer = w


class TraceWriter:
    """One rank's lock-free append handle onto its own ring.

    Re-binding after a park / un-park cycle resumes from the published
    cursor and sequence counter in the ring header, so a rank's record
    generations and message ids stay monotonic across its whole life.
    """

    active = True

    def __init__(self, buf: np.ndarray, rank: int, capacity: int,
                 base: int) -> None:
        self._buf = buf
        self.rank = rank
        self._cap = capacity
        self._base = base
        self._next = int(buf[base + RING_CURSOR])
        self._seq = int(buf[base + RING_SEQ])
        buf[base + RING_STATE] = RING_ACTIVE

    # -- the seqlocked append (single writer: this rank) ---------------
    def _record(self, kind: float, code: int, t0: float, dur: float,
                a: float, b: float, c: float, d: float) -> None:
        buf, g = self._buf, self._next
        s = self._base + RING_HEADER_WORDS + (g % self._cap) * RECORD_WORDS
        buf[s] = 2.0 * g + 1.0   # odd: write in progress
        buf[s + 1] = g
        buf[s + 2] = kind
        buf[s + 3] = code
        buf[s + 4] = t0
        buf[s + 5] = dur
        buf[s + 6] = a
        buf[s + 7] = b
        buf[s + 8] = c
        buf[s + 9] = d
        buf[s] = 2.0 * g + 2.0   # even, generation-stamped: committed
        self._next = g + 1
        buf[self._base + RING_CURSOR] = float(g + 1)

    # -- the instrumentation API ---------------------------------------
    def instant(self, code: int, a: float = 0.0, b: float = 0.0,
                c: float = 0.0, d: float = 0.0) -> None:
        self._record(KIND_INSTANT, code, perf_counter(), 0.0, a, b, c, d)

    def span(self, code: int, t0: float, a: float = 0.0, b: float = 0.0,
             c: float = 0.0, d: float = 0.0) -> None:
        """Close a span opened at wall time ``t0`` (caller-measured)."""
        self._record(KIND_SPAN, code, t0, perf_counter() - t0, a, b, c, d)

    def send(self, dst: int, tag: int, epoch: int = 0) -> int:
        """Stamp one outgoing message; returns its sequence id.

        The id is unique per sending rank (single writer), so
        ``(src, seq)`` names the message globally — the flow-edge key
        the assembler pairs with the matching receive record.
        """
        s = self._seq + 1
        self._seq = s
        self._buf[self._base + RING_SEQ] = float(s)
        self._record(KIND_SEND, SEND, perf_counter(), 0.0,
                     float(dst), float(tag), float(epoch), float(s))
        return s

    def recv(self, src: int, tag: int, epoch: int, seq: int,
             t0: float) -> None:
        """Record one matched receive; ``t0`` is when the wait began,
        so the record's duration is exactly who-waited-on-whom."""
        self._record(KIND_RECV, RECV, t0, perf_counter() - t0,
                     float(src), float(tag), float(epoch), float(seq))

    # -- ring lifecycle ------------------------------------------------
    def freeze(self) -> None:
        """Mark the ring parked: records stay, live scrapes skip it."""
        self._buf[self._base + RING_STATE] = RING_FROZEN

    def thaw(self) -> None:
        self._buf[self._base + RING_STATE] = RING_ACTIVE


def _read_ring(buf: np.ndarray, base: int, capacity: int) -> list[tuple]:
    """Scrape one ring: every committed record still in its slot.

    Reads the published cursor, then seqlock-validates each of the last
    ``min(cursor, capacity)`` generations.  A slot whose commit word is
    not the exact even stamp of the expected generation is in one of
    two benign states — mid-write (odd) or lapped by a newer generation
    (the writer wrapped past our cursor snapshot) — and is dropped, so
    the scraper never yields a torn record and, once the writer is
    quiescent, yields exactly the newest ``min(cursor, capacity)``
    records.  The retry loop is bounded and yields the interpreter on
    every failed poll for the same reason the telemetry scraper does.
    """
    cursor = int(buf[base + RING_CURSOR])
    lo = max(0, cursor - capacity)
    head = base + RING_HEADER_WORDS
    out: list[tuple] = []
    for g in range(lo, cursor):
        s = head + (g % capacity) * RECORD_WORDS
        want = 2.0 * g + 2.0
        for _ in range(4096):
            c1 = float(buf[s])
            if c1 > want:
                break        # lapped: this generation is gone
            if c1 == want:
                vals = tuple(float(v) for v in buf[s + 1:s + RECORD_WORDS])
                if float(buf[s]) == want and int(vals[0]) == g:
                    out.append(vals)
                    break
            sleep(0.0)       # mid-write: yield so the writer finishes
    return out


class TracePlane:
    """All rings of one world, plus the parent's scrape path."""

    def __init__(self, max_ranks: int, capacity: int = DEFAULT_CAPACITY,
                 backend: str = "",
                 segment: "shm.ShmSegment | None" = None) -> None:
        self.max_ranks = max_ranks
        self.capacity = capacity
        self.backend = backend
        self._ring_words = ring_words(capacity)
        self._seg = segment
        if segment is not None:
            self._buf = segment.ndarray()
        else:
            self._buf = np.zeros(max_ranks * self._ring_words,
                                 dtype=np.float64)

    # ------------------------------------------------------------------
    @classmethod
    def local(cls, max_ranks: int, capacity: int = DEFAULT_CAPACITY,
              backend: str = "") -> "TracePlane":
        """A process-local plane (thread substrates; no segment)."""
        return cls(max_ranks, capacity=capacity, backend=backend)

    @classmethod
    def create(cls, launch_id: str, max_ranks: int,
               capacity: int = DEFAULT_CAPACITY,
               backend: str = "") -> "TracePlane":
        """Allocate the launch's trace segment (parent side)."""
        from repro.dsm import shm

        seg = shm.ShmSegment.allocate(
            trace_name(launch_id),
            (max_ranks * ring_words(capacity),), np.float64)
        seg.ndarray()[:] = 0.0
        return cls(max_ranks, capacity=capacity, backend=backend,
                   segment=seg)

    @classmethod
    def attach(cls, launch_id: str, max_ranks: int,
               capacity: int = DEFAULT_CAPACITY,
               backend: str = "") -> "TracePlane":
        """Map an existing trace segment (rank-process side)."""
        from repro.dsm import shm

        seg = shm.ShmSegment.attach(
            trace_name(launch_id),
            (max_ranks * ring_words(capacity),), np.float64)
        return cls(max_ranks, capacity=capacity, backend=backend,
                   segment=seg)

    # ------------------------------------------------------------------
    def ring(self, rank: int) -> np.ndarray:
        if not (0 <= rank < self.max_ranks):
            raise ValueError(f"rank {rank} outside plane of "
                             f"{self.max_ranks} rings")
        return self._buf[rank * self._ring_words:
                         (rank + 1) * self._ring_words]

    def writer(self, rank: int) -> TraceWriter:
        """This rank's append handle; activates (or thaws) its ring."""
        self.ring(rank)  # bounds check
        return TraceWriter(self._buf, rank, self.capacity,
                           rank * self._ring_words)

    # ------------------------------------------------------------------
    def scrape(self, include_frozen: bool = False
               ) -> dict[int, list[tuple]]:
        """Committed records of every live ring, keyed by rank.

        Empty rings (never bound) and frozen rings (parked workers) are
        skipped; pass ``include_frozen`` for the drain-time scrape that
        folds a finished world's parked rings in as well.
        """
        wanted = ({RING_ACTIVE, RING_FROZEN} if include_frozen
                  else {RING_ACTIVE})
        out: dict[int, list[tuple]] = {}
        for rank in range(self.max_ranks):
            base = rank * self._ring_words
            if float(self._buf[base + RING_STATE]) not in wanted:
                continue
            recs = _read_ring(self._buf, base, self.capacity)
            if recs:
                out[rank] = recs
        return out

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._buf = np.zeros(0, dtype=np.float64)
        if self._seg is not None:
            self._seg.close()

    def unlink(self) -> None:
        if self._seg is not None:
            self._seg.unlink()


def unlink_trace(launch_id: str) -> None:
    """Parent crash-path sweep for the launch's trace segment."""
    from repro.dsm import shm

    shm.unlink_by_name(trace_name(launch_id))
