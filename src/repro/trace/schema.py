"""The fixed trace-record schema: ring layout and the span name table.

Like :mod:`repro.telemetry.schema`, the layout is *static*: every rank
(and the scraping parent) computes identical word offsets from this
module alone, so the shared-memory trace plane needs no negotiation.

A rank's **ring** is a flat ``float64`` region::

    [header : RING_HEADER_WORDS] [record 0] [record 1] ... [record C-1]

* header word 0 — ring state (``RING_EMPTY`` / ``RING_ACTIVE`` /
  ``RING_FROZEN``; park freezes, un-park thaws, exactly like a
  telemetry page);
* header word 1 — the **write cursor**: total records ever appended.
  Record ``g`` lives in slot ``g % capacity`` — overwrite-oldest
  wraparound by construction;
* header word 2 — the rank's message **sequence counter** (survives
  writer re-binding across park / un-park cycles).

A **record** is ``RECORD_WORDS`` words.  Word 0 is the seqlock commit
word: the writer stores ``2g + 1`` (odd: in progress), fills the
payload, then stores ``2g + 2`` (even: committed, generation-stamped).
A scraper that finds any other value knows the slot is torn or lapped
and drops it — it can never yield a half-written record.

``float64`` holds every value: integers stay exact to 2**53 and one
dtype keeps the layout trivial (the same trick the telemetry pages
play).
"""

from __future__ import annotations

#: words per record: commit, gidx, kind, code, t0, dur, a, b, c, d.
RECORD_WORDS = 10
#: payload word meanings (offsets within a record).
W_COMMIT, W_GIDX, W_KIND, W_CODE, W_T0, W_DUR, W_A, W_B, W_C, W_D = range(10)

#: record kinds (word 2).
KIND_SPAN, KIND_INSTANT, KIND_SEND, KIND_RECV = 1.0, 2.0, 3.0, 4.0

#: words reserved at the head of each ring.
RING_HEADER_WORDS = 8
#: header word offsets.
RING_STATE, RING_CURSOR, RING_SEQ = 0, 1, 2
#: ring state flag values (header word 0).
RING_EMPTY, RING_ACTIVE, RING_FROZEN = 0.0, 1.0, 2.0

#: default ring capacity (records per rank) — full-timeline tracing.
DEFAULT_CAPACITY = 2048
#: flight-recorder capacity: small on purpose; the ring is a black box
#: holding only the last moments before a failure.
FLIGHT_CAPACITY = 128
#: records a flight snapshot keeps per rank.
FLIGHT_LAST_N = 64


def ring_words(capacity: int) -> int:
    """Words one rank's ring occupies."""
    return RING_HEADER_WORDS + capacity * RECORD_WORDS


#: the span/instant name table — codes are indexes into this tuple, so
#: only small integers cross the binary ring; names are re-attached by
#: the parent-side assembler.  Appending here is all it takes to add an
#: instrumentation site.
NAMES: tuple[str, ...] = (
    "phase",              # PHASE — one driver-loop phase attempt
    "safepoint",          # SAFEPOINT — one safe-point protocol pass
    "checkpoint",         # CHECKPOINT — master-funnelled checkpoint
    "checkpoint_local",   # CHECKPOINT_LOCAL — per-rank shard checkpoint
    "snapshot_capture",   # CAPTURE — gather + master-format capture
    "ckpt_write",         # CKPT_WRITE — one atomic file write / submit
    "ckpt_flush",         # CKPT_FLUSH — async-writer durability barrier
    "ckpt_funnel",        # CKPT_FUNNEL — rank->parent snapshot RPC
    "restore",            # RESTORE — checkpoint data back into ranks
    "adapt_exit",         # ADAPT_EXIT — unwind toward a relaunch
    "team_resize",        # TEAM_RESIZE — in-place thread-dim reshape
    "elastic_moves",      # MOVES — field-region movement of a reshape
    "join_rendezvous",    # RENDEZVOUS — joiners meet the membership
    "membership_switch",  # SWITCH — new rank identity applied
    "send",               # SEND — message stamped at the transport
    "recv",               # RECV — matched receive (dur = wait)
    "tcp_frame",          # TCP_FRAME — one framed wire send
    "event",              # EVENT — an EventLog entry as an instant
    "ckpt_chunk",         # CKPT_CHUNK — chunk + hash a snapshot's fields
    "ckpt_pack",          # CKPT_PACK — CAS handshake + missing-chunk ship
    "ckpt_gc",            # CKPT_GC — CAS mark-and-sweep pass
    "ckpt_fetch",         # CKPT_FETCH — parallel chunk fetch of a restore
)

(PHASE, SAFEPOINT, CHECKPOINT, CHECKPOINT_LOCAL, CAPTURE, CKPT_WRITE,
 CKPT_FLUSH, CKPT_FUNNEL, RESTORE, ADAPT_EXIT, TEAM_RESIZE, MOVES,
 RENDEZVOUS, SWITCH, SEND, RECV, TCP_FRAME, EVENT, CKPT_CHUNK,
 CKPT_PACK, CKPT_GC, CKPT_FETCH) = range(len(NAMES))


def name_of(code: float | int) -> str:
    """Human name for a record's code word (defensive on bad codes)."""
    i = int(code)
    return NAMES[i] if 0 <= i < len(NAMES) else f"code{i}"
