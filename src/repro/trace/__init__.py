"""Distributed tracing: shared-memory ring buffers, Perfetto export.

The timeline half of the observability subsystem: per-rank ring
buffers of fixed-width binary records (:mod:`~repro.trace.schema`)
appended lock-free from the hot paths (:mod:`~repro.trace.plane`),
scraped by the parent and assembled into Chrome trace-event JSON —
spans, instants and cross-rank message flow arrows, Perfetto-loadable
(:mod:`~repro.trace.assemble`).  A flight-recorder mode keeps rings
small so every crash ships the last moments of every rank as a black
box.
"""

from repro.trace import schema
from repro.trace.assemble import (
    TraceAssembler,
    TraceCollector,
    validate_chrome_trace,
)
from repro.trace.plane import (
    NULL_TRACER,
    NullTracer,
    TracePlane,
    TraceWriter,
    bind,
    trace_name,
    tracer,
    unlink_trace,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "TraceAssembler",
    "TraceCollector",
    "TracePlane",
    "TraceWriter",
    "bind",
    "schema",
    "trace_name",
    "tracer",
    "unlink_trace",
    "validate_chrome_trace",
]
