"""Job admission and fair-share allocation over the warm fleet.

A submitted job carries its shape envelope — ``nranks`` (preferred),
``min_ranks``/``max_ranks`` (the elastic range it tolerates) and a
``priority``.  The queue admits up to ``max_queue`` jobs (admission
control: a full queue rejects at submit time, it does not buffer
unboundedly) and releases them priority-first, FIFO within a priority.

The service's scheduler drives *elastic fair share* from queue depth:
each running or admissible job's fair share is ``workers // parties``,
clamped to its declared range.  When a higher-priority job is waiting
and the fleet has no idle workers, running jobs that declared
``min_ranks`` below their current size are candidates to shrink in
place — ranked by the advisor's modelled
:meth:`~repro.core.advisor.SelfAdaptationAdvisor.transition_cost`, so
the membership transition that frees workers cheapest is the one taken.
The shrink is delivered through the job's steer block and executed by
the elastic membership protocol at the job's next safe point; the freed
workers then admit the waiting job on the following scheduling round.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any


class QueueFull(RuntimeError):
    """Admission control rejected the submission."""


@dataclass
class Job:
    """One submitted job, from queue to terminal state."""

    id: int
    request: dict
    priority: int = 0
    status: str = "queued"  # queued|running|done|cancelled|error
    result: dict | None = None
    error: str | None = None
    lane: int | None = None
    backend: Any = None            # the job's FleetBackend while running
    resize_target: int | None = None
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: float | None = None
    finished_at: float | None = None
    done: threading.Event = field(default_factory=threading.Event)

    @property
    def tag(self) -> str:
        return f"j{self.id}"

    @property
    def nranks(self) -> int:
        return int(self.request.get("nranks", 1))

    @property
    def min_ranks(self) -> int:
        return int(self.request.get("min_ranks") or self.nranks)

    @property
    def max_ranks(self) -> int:
        return int(self.request.get("max_ranks") or self.nranks)

    def clamp(self, n: int) -> int:
        return max(self.min_ranks, min(self.max_ranks, n))

    def snapshot(self) -> dict:
        """A picklable status view for the client protocol."""
        out = {"job": self.id, "status": self.status,
               "priority": self.priority}
        if self.backend is not None and self.status == "running":
            out["nranks"] = self.backend.current_nranks
        if self.finished_at is not None:
            out["latency_s"] = self.finished_at - self.submitted_at
            if self.started_at is not None:
                out["run_s"] = self.finished_at - self.started_at
        if self.result is not None:
            out.update(self.result)
        if self.error is not None:
            out["error"] = self.error
        return out


class JobQueue:
    """Priority-FIFO queue with admission control.  Thread-safe."""

    def __init__(self, max_queue: int = 256) -> None:
        self.max_queue = max_queue
        self._lock = threading.Lock()
        self._seq = 0
        self._jobs: dict[int, Job] = {}
        self._waiting: list[int] = []

    # ------------------------------------------------------------------
    def submit(self, request: dict, priority: int = 0) -> Job:
        with self._lock:
            if len(self._waiting) >= self.max_queue:
                raise QueueFull(
                    f"job queue is full ({self.max_queue} waiting)")
            self._seq += 1
            job = Job(id=self._seq, request=request, priority=priority)
            self._jobs[job.id] = job
            self._waiting.append(job.id)
            return job

    def get(self, job_id: int) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def depth(self) -> int:
        with self._lock:
            return len(self._waiting)

    # ------------------------------------------------------------------
    def _ordered(self) -> list[int]:
        return sorted(self._waiting,
                      key=lambda i: (-self._jobs[i].priority, i))

    def peek(self) -> Job | None:
        """The job the scheduler would admit next."""
        with self._lock:
            order = self._ordered()
            return self._jobs[order[0]] if order else None

    def take(self, job_id: int) -> Job | None:
        """Remove a specific waiting job for launch (None if it left the
        queue since the peek — cancelled, or taken by another round)."""
        with self._lock:
            if job_id not in self._waiting:
                return None
            self._waiting.remove(job_id)
            return self._jobs[job_id]

    def cancel_waiting(self, job_id: int) -> bool:
        """Cancel a job still in the queue (False if it already left)."""
        with self._lock:
            if job_id not in self._waiting:
                return False
            self._waiting.remove(job_id)
            job = self._jobs[job_id]
            job.status = "cancelled"
            job.done.set()
            return True
