"""The runtime service daemon: one warm world, many jobs.

``RuntimeService`` owns the long-lived pieces — the pre-forked
:class:`~repro.service.fleet.WorkerFleet`, the master
:class:`~repro.ckpt.store.CheckpointStore` whose per-job namespaces
isolate checkpoint files, the
:class:`~repro.service.scheduler.JobQueue`, and a loopback socket
server speaking the transport layer's length-prefixed pickle frames
(:func:`repro.dsm.socketmail.send_framed`).  Each admitted job runs a
full :class:`~repro.core.runtime.Runtime` pass on a service thread —
pcr start-up check, phase driver, restarts and adaptations included —
against a per-job :class:`~repro.service.backend.FleetBackend`, so a
job through the service is *semantically* a normal run whose world
already exists.

The scheduler thread admits queued jobs to free lanes, sizes each to
its fair share of the fleet, and steers running jobs: a shrink when a
higher-priority job waits on a full fleet (candidates priced with the
advisor's ``transition_cost`` — cheapest membership transition first),
a grow back when the queue drains and workers idle.
"""

from __future__ import annotations

import socket
import tempfile
import threading
import time
import traceback

from repro.ckpt.policy import Never
from repro.ckpt.store import CheckpointStore, RunLedger
from repro.core.advisor import SelfAdaptationAdvisor
from repro.core.modes import Capabilities, ExecConfig, Mode
from repro.core.rewriter import plug
from repro.core.runtime import Runtime
from repro.dsm.socketmail import recv_framed, send_framed
from repro.exec.multiproc import MultiprocessBackend
from repro.exec.registry import BackendRegistry
from repro.service.backend import FleetBackend
from repro.service.fleet import WorkerFleet
from repro.service.scheduler import JobQueue, QueueFull
from repro.service.steer import JobCancelled
from repro.telemetry import CONTENT_TYPE, MetricsRegistry
from repro.vtime.machine import MachineModel


class _FleetPricing(MultiprocessBackend):
    """Registry stand-in so ``transition_cost`` can resolve ``fleet``
    configurations: same calibration and capabilities as the real
    fleet backend, no fleet attached."""

    name = "fleet"

    def capabilities(self, config: ExecConfig) -> Capabilities:
        return Capabilities(rank_collectives=True, shared_fields=True,
                            elastic_ranks=True)


class RuntimeService:
    """The daemon: fleet + queue + scheduler + socket front door."""

    def __init__(self, workers: int = 4, lanes: int = 2,
                 ckpt_dir: str | None = None,
                 machine: MachineModel | None = None,
                 policy=None, data_plane: bool = True,
                 plane_threshold: int | None = None,
                 max_queue: int = 256, arena: bool = True,
                 join_timeout: float = 120.0,
                 host: str = "127.0.0.1",
                 ckpt_cas: bool = False) -> None:
        if lanes < 1 or workers < 1:
            raise ValueError("need at least one worker and one lane")
        self.fleet = WorkerFleet(workers=workers, lanes=lanes,
                                 data_plane=data_plane,
                                 plane_threshold=plane_threshold,
                                 arena=arena)
        self.machine = machine if machine is not None else MachineModel()
        self.policy = policy if policy is not None else Never()
        self.ckpt_dir = ckpt_dir or tempfile.mkdtemp(prefix="repro-svc-")
        #: with ``ckpt_cas`` every job namespace shares one dedup CAS —
        #: a job checkpointing state another job already wrote stores
        #: only a recipe; namespace teardown GCs what no job references.
        self.ckpt_cas = ckpt_cas
        if ckpt_cas:
            from repro.ckpt.cas import CasCheckpointStore

            self.store: CheckpointStore = CasCheckpointStore(self.ckpt_dir)
        else:
            self.store = CheckpointStore(self.ckpt_dir)
        self.queue = JobQueue(max_queue)
        self.join_timeout = join_timeout
        pricing = BackendRegistry()
        pricing.register(_FleetPricing(), mode=Mode.DISTRIBUTED)
        #: prices grow/shrink candidates (modelled transition cost).
        self.advisor = SelfAdaptationAdvisor(self.machine, registry=pricing)
        self._host = host
        self._lock = threading.Lock()
        self._lanes_free = set(range(lanes))
        self._running: dict[int, object] = {}   # job id -> Job
        self._threads: list[threading.Thread] = []
        self._sched_wake = threading.Event()
        self._stopping = threading.Event()
        self._sock: socket.socket | None = None
        self.address: tuple[str, int] | None = None
        self._started = False
        # the service-wide metrics registry: every finished job's
        # snapshot is folded in under a ``job=<tag>`` label, and the
        # fleet/arena occupancies surface as callback gauges — the one
        # surface behind the ``stats`` RPC and the scrape endpoint.
        self.metrics = MetricsRegistry()
        self.metrics.gauge_set(
            "repro_service_workers_total", float(workers),
            help="Fleet worker processes")
        self.metrics.gauge_set(
            "repro_service_lanes_total", float(lanes),
            help="Concurrent job lanes")
        self.metrics.gauge_fn(
            "repro_service_workers_idle",
            lambda: float(self.fleet.idle_count()),
            help="Fleet workers parked in the pool")
        self.metrics.gauge_fn(
            "repro_service_jobs_queued",
            lambda: float(self.queue.depth()),
            help="Jobs waiting for a lane")
        self.metrics.gauge_fn(
            "repro_service_jobs_running",
            lambda: float(len(self._running)),
            help="Jobs currently holding a lane")
        if self.fleet.arena is not None:
            arena = self.fleet.arena
            self.metrics.gauge_fn(
                "repro_arena_segments_total",
                lambda: float(arena.stats()["segments"]),
                help="Shared segments the arena ever allocated")
            self.metrics.gauge_fn(
                "repro_arena_segments_free",
                lambda: float(arena.stats()["free"]),
                help="Arena segments on the free lists")
            self.metrics.gauge_fn(
                "repro_arena_segments_leased",
                lambda: float(arena.stats()["leased"]),
                help="Arena segments leased to running jobs")
        self._metrics_sock: socket.socket | None = None
        self.metrics_address: tuple[str, int] | None = None

    # ------------------------------------------------------------------
    def start(self) -> "RuntimeService":
        if self._started:
            return self
        self.fleet.start()
        t = threading.Thread(target=self._scheduler, daemon=True,
                             name="svc-sched")
        t.start()
        self._threads.append(t)
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((self._host, 0))
        self._sock.listen()
        self._sock.settimeout(0.25)
        self.address = self._sock.getsockname()
        t = threading.Thread(target=self._accept_loop, daemon=True,
                             name="svc-accept")
        t.start()
        self._threads.append(t)
        self._started = True
        return self

    # ------------------------------------------------------------------
    def serve_metrics(self, host: str | None = None
                      ) -> tuple[str, int]:
        """Expose the registry over plain HTTP for curl-style scraping.

        Binds a loopback socket (ephemeral port) and answers every GET
        with the Prometheus text exposition of :attr:`metrics` — enough
        protocol for ``curl`` and a Prometheus scrape target, with no
        server framework.  Idempotent; returns ``(host, port)``.
        """
        if self._metrics_sock is not None:
            return self.metrics_address
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host or self._host, 0))
        sock.listen()
        sock.settimeout(0.25)
        self._metrics_sock = sock
        self.metrics_address = sock.getsockname()
        t = threading.Thread(target=self._metrics_loop, daemon=True,
                             name="svc-metrics")
        t.start()
        self._threads.append(t)
        return self.metrics_address

    def _metrics_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._metrics_sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with conn:
                try:
                    conn.settimeout(5.0)
                    # drain the request head; the path is irrelevant —
                    # there is exactly one resource to serve.
                    head = b""
                    while b"\r\n\r\n" not in head and len(head) < 65536:
                        chunk = conn.recv(4096)
                        if not chunk:
                            break
                        head += chunk
                    body = self.metrics.to_prometheus().encode("utf-8")
                    conn.sendall(
                        b"HTTP/1.0 200 OK\r\n"
                        b"Content-Type: " + CONTENT_TYPE.encode() + b"\r\n"
                        + f"Content-Length: {len(body)}\r\n\r\n".encode()
                        + body)
                except OSError:
                    continue

    def stop(self) -> None:
        if not self._started:
            return
        self._stopping.set()
        # cancel whatever is still waiting, steer whatever is running.
        while True:
            job = self.queue.peek()
            if job is None:
                break
            self.queue.cancel_waiting(job.id)
        with self._lock:
            running = list(self._running.values())
        for job in running:
            if job.lane is not None:
                self.fleet.steer[job.lane].cancel()
        for job in running:
            job.done.wait(timeout=self.join_timeout)
        for s in (self._sock, self._metrics_sock):
            if s is not None:
                try:
                    s.close()
                except OSError:
                    pass
        for t in self._threads:
            t.join(timeout=5.0)
        self.fleet.shutdown()
        self._started = False

    def __enter__(self) -> "RuntimeService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _fair_share(self, parties: int) -> int:
        return max(1, self.fleet.workers // max(1, parties))

    def _scheduler(self) -> None:
        while not self._stopping.is_set():
            self._sched_wake.wait(timeout=0.1)
            self._sched_wake.clear()
            if self._stopping.is_set():
                return
            try:
                self._schedule_once()
            except Exception:  # noqa: BLE001 - scheduler must survive
                traceback.print_exc()

    def _schedule_once(self) -> None:
        # 1. admit: queued jobs onto free lanes, sized to fair share.
        while True:
            job = self.queue.peek()
            if job is None:
                break
            with self._lock:
                if not self._lanes_free:
                    break
                parties = len(self._running) + 1
            share = self._fair_share(parties)
            want = job.clamp(min(job.nranks, max(job.min_ranks, share)))
            if self.fleet.idle_count() < want:
                self._make_room(job, want)
                break
            taken = self.queue.take(job.id)
            if taken is None:
                continue  # cancelled between peek and take
            with self._lock:
                lane = min(self._lanes_free)
                self._lanes_free.discard(lane)
                self._running[taken.id] = taken
            taken.lane = lane
            # arm the lane's steer block *before* the job is visibly
            # running: a cancel that races the launch must land on a
            # reset block, not be wiped by one.
            self.fleet.steer[lane].reset()
            taken.status = "running"
            t = threading.Thread(target=self._run_job, args=(taken, want),
                                 daemon=True, name=f"svc-{taken.tag}")
            t.start()
            self._threads.append(t)
        # 2. relax: queue empty and workers idle -> grow shrunken jobs.
        if self.queue.depth() == 0:
            self._grow_back()

    def _make_room(self, waiting, want: int) -> None:
        """Shrink a running job in place to free workers for ``waiting``.

        Candidates: running jobs at least as low-priority as the waiter
        whose declared ``min_ranks`` leaves headroom; ranked by the
        advisor's modelled transition cost, cheapest first.
        """
        with self._lock:
            running = list(self._running.values())
        candidates = []
        for job in running:
            b = job.backend
            if b is None or job.priority > waiting.priority:
                continue
            cur = b.current_nranks
            target = job.clamp(self._fair_share(len(running) + 1))
            if target >= cur:
                continue
            blk = self.fleet.steer[job.lane]
            if not blk.acked() or job.resize_target == target:
                continue  # one outstanding resize per job
            cost = self.advisor.transition_cost(
                ExecConfig.distributed(cur).with_backend("fleet"),
                ExecConfig.distributed(target).with_backend("fleet"))
            candidates.append((cost, job.id, job, target))
        if not candidates:
            return
        _, _, job, target = min(candidates)
        job.resize_target = target
        self.fleet.steer[job.lane].resize(target)

    def _grow_back(self) -> None:
        with self._lock:
            running = list(self._running.values())
        if not running:
            return
        share = self._fair_share(len(running))
        for job in running:
            b = job.backend
            if b is None:
                continue
            cur = b.current_nranks
            target = job.clamp(min(share, cur + self.fleet.idle_count()))
            if target <= cur:
                continue
            blk = self.fleet.steer[job.lane]
            if not blk.acked() or job.resize_target == target:
                continue
            job.resize_target = target
            blk.resize(target)

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    def _run_job(self, job, nranks: int) -> None:
        req = job.request
        job.started_at = time.monotonic()
        try:
            store = self.store.namespace(str(job.id))
            ledger = RunLedger(self.ckpt_dir,
                               name=f"run_status_{job.tag}.json")
            backend = FleetBackend(self.fleet, job.tag, job.lane,
                                   store=store,
                                   join_timeout=self.join_timeout)
            job.backend = backend
            registry = BackendRegistry()
            registry.register(backend, mode=Mode.DISTRIBUTED)
            woven = req["woven"]
            if req.get("plugs") is not None:
                woven = plug(woven, req["plugs"])
            config = ExecConfig.distributed(nranks).with_backend("fleet")
            rt = Runtime(machine=self.machine, ckpt_dir=self.ckpt_dir,
                         policy=req.get("policy") or self.policy,
                         ckpt_strategy=req.get("ckpt_strategy", "master"),
                         store=store, ledger=ledger, registry=registry,
                         telemetry=req.get("telemetry", True),
                         trace=req.get("trace", False))
            res = rt.run(woven,
                         ctor_args=tuple(req.get("ctor_args", ())),
                         ctor_kwargs=req.get("ctor_kwargs") or {},
                         entry=req.get("entry", "run"),
                         entry_args=tuple(req.get("entry_args", ())),
                         config=config)
            job.result = {"value": res.value, "vtime": res.vtime,
                          "relaunches": res.relaunches,
                          "reshapes": len(res.in_place_reshapes),
                          "metrics": res.metrics,
                          "trace": res.trace}
            if res.metrics is not None:
                # fold the job's run into the service-wide registry,
                # labelled so multi-job aggregates stay attributable.
                self.metrics.absorb_snapshot(
                    res.metrics, extra_labels={"job": job.tag})
            job.status = "done"
        except JobCancelled:
            job.status = "cancelled"
        except BaseException:  # noqa: BLE001 - job error, not service error
            job.error = traceback.format_exc()
            job.status = "error"
        finally:
            if self.ckpt_cas:
                # job-namespace teardown: drop the job's recipes and
                # sweep every chunk no surviving job references.  The
                # job's funnel traffic has drained (rt.run returned and
                # the backend unregistered its store), so nothing can
                # re-reference the swept chunks.
                try:
                    self.store.namespace(str(job.id)).clear()
                except Exception:  # noqa: BLE001 - job teardown is
                    pass           # best-effort; the next GC catches up
            job.finished_at = time.monotonic()
            with self._lock:
                self._running.pop(job.id, None)
                self._lanes_free.add(job.lane)
            job.done.set()
            self._sched_wake.set()

    # ------------------------------------------------------------------
    # the socket front door
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            t = threading.Thread(target=self._serve_conn, args=(conn,),
                                 daemon=True, name="svc-conn")
            t.start()

    def _serve_conn(self, conn: socket.socket) -> None:
        with conn:
            while not self._stopping.is_set():
                try:
                    req = recv_framed(conn)
                except (OSError, EOFError):
                    return
                if req is None:
                    return
                try:
                    send_framed(conn, self._dispatch(req))
                except OSError:
                    return

    def _dispatch(self, req: dict) -> dict:
        try:
            op = req.get("op")
            if op == "submit":
                return self._op_submit(req)
            if op == "status":
                return self._op_status(req)
            if op == "result":
                return self._op_result(req)
            if op == "cancel":
                return self._op_cancel(req)
            if op == "stats":
                return self._op_stats()
            if op == "trace":
                return self._op_trace(req)
            if op == "shutdown":
                threading.Thread(target=self.stop, daemon=True,
                                 name="svc-stop").start()
                return {"ok": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except Exception:  # noqa: BLE001 - protocol errors go to the client
            return {"ok": False, "error": traceback.format_exc()}

    def _op_submit(self, req: dict) -> dict:
        try:
            job = self.queue.submit(req["request"],
                                    priority=int(req.get("priority", 0)))
        except QueueFull as exc:
            return {"ok": False, "error": str(exc), "full": True}
        self._sched_wake.set()
        return {"ok": True, "job": job.id}

    def _op_status(self, req: dict) -> dict:
        job = self.queue.get(int(req["job"]))
        if job is None:
            return {"ok": False, "error": "no such job"}
        out = job.snapshot()
        out["ok"] = True
        return out

    def _op_result(self, req: dict) -> dict:
        job = self.queue.get(int(req["job"]))
        if job is None:
            return {"ok": False, "error": "no such job"}
        job.done.wait(timeout=req.get("wait", 0) or 0)
        out = job.snapshot()
        out["ok"] = True
        out["ready"] = job.done.is_set()
        return out

    def _op_cancel(self, req: dict) -> dict:
        job = self.queue.get(int(req["job"]))
        if job is None:
            return {"ok": False, "error": "no such job"}
        if self.queue.cancel_waiting(job.id):
            self._sched_wake.set()
            return {"ok": True, "was": "queued"}
        if job.status == "running" and job.lane is not None:
            self.fleet.steer[job.lane].cancel()
            return {"ok": True, "was": "running"}
        return {"ok": True, "was": job.status}

    def _op_trace(self, req: dict) -> dict:
        """The ``trace`` RPC: a finished job's assembled Chrome trace
        document (submit the job with ``trace=True``/``"flight"``)."""
        job = self.queue.get(int(req["job"]))
        if job is None:
            return {"ok": False, "error": "no such job"}
        if not job.done.is_set():
            return {"ok": False, "error": "job still running"}
        doc = (job.result or {}).get("trace")
        if doc is None:
            return {"ok": False,
                    "error": "job ran without tracing (trace=False)"}
        return {"ok": True, "trace": doc}

    def _op_stats(self) -> dict:
        """The ``stats`` RPC: a serialized metrics-registry snapshot.

        ``metrics`` is the API — the same wire shape as
        ``RunResult.metrics`` and ``BENCH_*.json``'s embedded section.
        The flat ``idle_workers``/``queued``/``running``/``workers``/
        ``lanes``/``arena`` keys are a deprecated adapter kept for one
        release; new consumers should read the snapshot's
        ``repro_service_*``/``repro_arena_*`` gauges instead.
        """
        out = {"ok": True, "metrics": self.metrics.snapshot(),
               "idle_workers": self.fleet.idle_count(),
               "queued": self.queue.depth(),
               "running": len(self._running),
               "workers": self.fleet.workers, "lanes": self.fleet.lanes}
        if self.fleet.arena is not None:
            out["arena"] = self.fleet.arena.stats()
        return out
