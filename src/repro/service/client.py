"""Client API for the runtime service: submit / status / result / cancel.

One request-reply frame pair per call over a fresh loopback connection
— the protocol is stateless on purpose, so a client object is just an
address and can outlive service restarts.  Woven classes ship portable
(base class + plug set, re-woven daemon-side), the same convention the
spawn start method uses, so anything submittable is anything picklable.
"""

from __future__ import annotations

import socket
import time

from repro.dsm.socketmail import recv_framed, send_framed
from repro.exec.multiproc import _portable_woven


class ServiceError(RuntimeError):
    """The daemon rejected or failed a request."""


class ServiceClient:
    """Talk to a :class:`~repro.service.daemon.RuntimeService`."""

    def __init__(self, address: tuple[str, int],
                 timeout: float = 30.0) -> None:
        self.address = address
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _call(self, req: dict, timeout: float | None = None) -> dict:
        with socket.create_connection(self.address,
                                      timeout=timeout or self.timeout) as c:
            c.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            send_framed(c, req)
            reply = recv_framed(c)
        if reply is None:
            raise ServiceError("service closed the connection")
        if not reply.get("ok"):
            raise ServiceError(reply.get("error", "request failed"))
        return reply

    # ------------------------------------------------------------------
    def submit(self, woven: type, ctor_args: tuple = (),
               ctor_kwargs: dict | None = None, entry: str = "run",
               entry_args: tuple = (), nranks: int = 2,
               min_ranks: int | None = None, max_ranks: int | None = None,
               priority: int = 0, policy=None,
               ckpt_strategy: str = "master",
               telemetry: bool = True,
               trace: bool | str = False) -> int:
        """Enqueue a job; returns its id (raises on a full queue).

        ``telemetry=False`` runs the job without a metrics plane: its
        result carries ``metrics: None`` and nothing is folded into
        the service-wide registry.  ``trace=True`` (or ``"flight"`` for
        small flight-recorder rings) records the job's timeline; fetch
        the assembled Chrome trace document with :meth:`trace`.
        """
        base, plugs = _portable_woven(woven)
        request = {
            "woven": base, "plugs": plugs, "ctor_args": tuple(ctor_args),
            "ctor_kwargs": ctor_kwargs or {}, "entry": entry,
            "entry_args": tuple(entry_args), "nranks": nranks,
            "min_ranks": min_ranks, "max_ranks": max_ranks,
            "policy": policy, "ckpt_strategy": ckpt_strategy,
            "telemetry": telemetry, "trace": trace,
        }
        reply = self._call({"op": "submit", "request": request,
                            "priority": priority})
        return reply["job"]

    def status(self, job: int) -> dict:
        return self._call({"op": "status", "job": job})

    def result(self, job: int, timeout: float | None = None) -> dict:
        """Block until the job reaches a terminal state (or ``timeout``);
        returns the status view (``status``/``value``/``vtime``/...)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait = 5.0
            if deadline is not None:
                wait = min(wait, deadline - time.monotonic())
                if wait <= 0:
                    return self.status(job)
            reply = self._call({"op": "result", "job": job, "wait": wait},
                               timeout=wait + self.timeout)
            if reply.get("ready"):
                return reply

    def cancel(self, job: int) -> dict:
        return self._call({"op": "cancel", "job": job})

    def stats(self) -> dict:
        return self._call({"op": "stats"})

    def trace(self, job: int) -> dict:
        """A finished job's Chrome trace-event document (Perfetto-
        loadable); the job must have been submitted with ``trace=``."""
        return self._call({"op": "trace", "job": job})["trace"]

    def shutdown(self) -> None:
        self._call({"op": "shutdown"})
