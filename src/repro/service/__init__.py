"""The persistent runtime service: warm worker fleets, pooled segments.

A :class:`~repro.service.daemon.RuntimeService` amortises world
construction — process forks, shared-memory segment allocation, mailbox
fabrics, checkpoint funnels — across *jobs*: a pre-forked
:class:`~repro.service.fleet.WorkerFleet` idles between jobs on control
channels (the same park/un-park mechanism the elastic membership
protocol uses), a :class:`~repro.service.arena.SegmentArena` recycles
capacity-classed shared-memory segments instead of unlink/re-allocating
per run, and a :class:`~repro.service.scheduler.JobQueue` admits and
fair-shares jobs over the fleet, reshaping running jobs in place when a
higher-priority job arrives.  Clients talk to the daemon over a local
socket with the transport layer's length-prefixed frames
(:mod:`repro.dsm.socketmail`).
"""

from repro.service.arena import SegmentArena
from repro.service.backend import FleetBackend
from repro.service.client import ServiceClient
from repro.service.daemon import RuntimeService
from repro.service.fleet import WorkerFleet
from repro.service.scheduler import Job, JobQueue
from repro.service.steer import JobCancelled, SteerBlock, SteerClient

__all__ = [
    "FleetBackend",
    "Job",
    "JobCancelled",
    "JobQueue",
    "RuntimeService",
    "SegmentArena",
    "ServiceClient",
    "SteerBlock",
    "SteerClient",
    "WorkerFleet",
]
