"""Job steering: out-of-band directives into a running job's safe points.

The service's scheduler must be able to cancel a running job and to
resize its rank team without being a rank itself.  Directives travel
through a tiny shared-memory **control block** per lane (four int64
words: serial, op, arg, ack-serial): the parent posts by writing the
operands and then bumping the serial, rank 0 polls the serial at every
safe point and acknowledges what it consumed.  Single-word aligned
stores make the protocol race-benign — a torn read is impossible and a
poll that misses a just-posted serial simply catches it one safe point
later.

Consensus is the subtle half: ranks reach safe points with skew (only
collectives synchronise them), so rank 0 *broadcasts its verdict
unconditionally at every safe point* — None almost always — and every
rank acts on the same directive at the same count.  A conditional
broadcast cannot be made deadlock-free against that skew, which is why
the poll result rides a real collective rather than the shared block.

Cancellation raises :class:`JobCancelled` on every rank — a
``BaseException`` like the other cooperative unwind signals, so domain
``except Exception`` handlers cannot swallow it; a resize feeds the
normal safe-point adaptation slot and reshapes in place through
:mod:`repro.elastic`.
"""

from __future__ import annotations

import numpy as np

from repro.dsm import shm

#: steering opcodes (the ``op`` word).
OP_NONE = 0
OP_CANCEL = 1
OP_RESIZE = 2

_WORDS = 4
_SERIAL, _OP, _ARG, _ACK = range(_WORDS)


class JobCancelled(BaseException):
    """Cooperative unwind: the service cancelled this job.

    Raised at the same safe point on every rank (the verdict broadcast
    above), so the whole membership unwinds together and no rank is left
    blocked in a collective.
    """

    def __init__(self, count: int) -> None:
        super().__init__(f"job cancelled at safe point {count}")
        self.count = count


def steer_name(fleet_id: str, lane: int) -> str:
    return f"{shm.SHM_PREFIX}-{fleet_id}-steer-l{lane}"


class SteerBlock:
    """Parent side: owns one lane's control block across jobs."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._seg = shm.ShmSegment.allocate(name, (_WORDS,), np.int64)
        self._w = self._seg.ndarray()
        self._w[:] = 0

    # ------------------------------------------------------------------
    def post(self, op: int, arg: int = 0) -> None:
        """Publish a directive (operands first, serial last)."""
        self._w[_OP] = op
        self._w[_ARG] = arg
        self._w[_SERIAL] = int(self._w[_SERIAL]) + 1

    def cancel(self) -> None:
        self.post(OP_CANCEL)

    def resize(self, nranks: int) -> None:
        self.post(OP_RESIZE, nranks)

    def acked(self) -> bool:
        """Has rank 0 consumed the newest directive?"""
        return int(self._w[_ACK]) >= int(self._w[_SERIAL])

    def reset(self) -> None:
        """Zero the block between jobs (no job is attached)."""
        self._w[:] = 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._w = None
        self._seg.close()

    def unlink(self) -> None:
        shm.unlink_by_name(self.name)


class SteerClient:
    """Worker side: rank 0 polls, every rank can raise the cancel.

    Built from the block *name* (ships in the job ticket); the mapping
    is attached lazily in the worker process.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._seg: shm.ShmSegment | None = None
        self._w = None
        self._seen = 0

    def _attach(self):
        if self._w is None:
            self._seg = shm.ShmSegment.attach(self.name, (_WORDS,), np.int64)
            self._w = self._seg.ndarray()
        return self._w

    # ------------------------------------------------------------------
    def poll(self, count: int) -> tuple[str, int] | None:
        """Rank 0's per-safe-point check of the control block."""
        w = self._attach()
        serial = int(w[_SERIAL])
        if serial == self._seen:
            return None
        self._seen = serial
        op, arg = int(w[_OP]), int(w[_ARG])
        w[_ACK] = serial
        if op == OP_CANCEL:
            return ("cancel", 0)
        if op == OP_RESIZE:
            return ("resize", arg)
        return None

    def raise_cancelled(self, count: int) -> None:
        raise JobCancelled(count)

    def close(self) -> None:
        if self._seg is not None:
            self._w = None
            self._seg.close()
            self._seg = None
