"""The fleet execution backend: a phase launch with zero forks.

One :class:`FleetBackend` instance serves one *job* on one fleet lane.
``launch`` leases warm workers instead of forking, sends activation
tickets instead of process arguments, and collects reports with the
stock multiprocess machinery — ``_collect``, ``_merge_events``,
``_outcome`` run unchanged over a rank→worker proxy.  Elastic grows
ride the ``_on_reshape`` hook: when rank 0 announces a membership grow,
the backend leases idle workers and parks them on the lane channels
where the un-park messages already wait, so the join path is byte-for-
byte the elastic joiner path of a cold launch.  Worker-side
cancellation reports (the steering block's cancel) surface here as a
:class:`~repro.service.steer.JobCancelled` raise, which unwinds through
the driver to the service's job thread.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.errors import WeaveError
from repro.core.modes import Capabilities, ExecConfig, Mode
from repro.dsm import shm
from repro.exec.base import PhaseOutcome, PhaseServices, PhaseSpec
from repro.exec.multiproc import _FAILED, MultiprocessBackend
from repro.service.fleet import CANCELLED, WorkerFleet
from repro.service.steer import JobCancelled
from repro.telemetry import unlink_telemetry

if TYPE_CHECKING:  # pragma: no cover
    from repro.ckpt.store import CheckpointStore


class _DeadProc:
    """Stand-in for a rank with no worker behind it at all."""

    exitcode = 1

    @staticmethod
    def is_alive() -> bool:
        return False

    @staticmethod
    def terminate() -> None:
        pass


_DEAD = _DeadProc()


class _GuardedProc:
    """Liveness passthrough with ``terminate`` disarmed.

    Used when a rank's worker is no longer leased to this job — back in
    the pool, or already serving another job.  Its *liveness* is still
    the truth (a worker that flushed its report and re-parked is alive,
    not dead; the report is merely behind a queue feeder), but the
    collector's reaping must never touch it.
    """

    def __init__(self, proc) -> None:
        self._proc = proc

    @property
    def exitcode(self):
        return self._proc.exitcode

    def is_alive(self) -> bool:
        return self._proc.is_alive()

    def terminate(self) -> None:
        pass


class _RankProcs:
    """Rank-indexed view of the job's workers for ``_collect``.

    Guarded: once a rank's worker leaves this job's lease, the
    collector sees its real liveness but cannot terminate it.
    """

    def __init__(self, backend: "FleetBackend") -> None:
        self.backend = backend

    def __getitem__(self, rank: int):
        b = self.backend
        wid = b.assignment.get(rank)
        if wid is None:
            return _DEAD
        proc = b.fleet.procs[wid]
        if b.fleet.job_of(wid) != b.job:
            return _GuardedProc(proc)
        return proc


class FleetBackend(MultiprocessBackend):
    """Launch phases of one job on a warm :class:`WorkerFleet`."""

    name = "fleet"
    modes = (Mode.DISTRIBUTED,)
    proc_prefix = WorkerFleet.proc_prefix

    def __init__(self, fleet: WorkerFleet, job: str, lane: int,
                 store: "CheckpointStore", join_timeout: float = 120.0,
                 lease_timeout: float = 30.0) -> None:
        super().__init__(start_method=fleet.start_method,
                         join_timeout=join_timeout,
                         data_plane=fleet.data_plane,
                         plane_threshold=fleet.plane_threshold)
        self.fleet = fleet
        self.job = job
        self.lane = lane
        self.store = store
        self.lease_timeout = lease_timeout
        #: rank -> worker id, maintained across membership changes.
        self.assignment: dict[int, int] = {}
        #: ranks parked for a grow whose un-park may not be consumed.
        self._pending: dict[int, int] = {}
        #: the live membership size (scheduler reads this for fair-share).
        self.current_nranks = 0
        self._ticket = None

    def capabilities(self, config: ExecConfig) -> Capabilities:
        return Capabilities(rank_collectives=True, shared_fields=True,
                            elastic_ranks=True)

    def _fabric_size(self, spec: PhaseSpec) -> int:
        # the lane fabric is fleet-wide: any grow up to the whole fleet
        # can be served in place.
        return self.fleet.workers

    # ------------------------------------------------------------------
    def launch(self, spec: PhaseSpec, services: PhaseServices
               ) -> PhaseOutcome:
        fleet = self.fleet
        n = spec.config.nranks
        if n > fleet.workers:
            raise WeaveError(
                f"job {self.job} wants {n} ranks; fleet has "
                f"{fleet.workers} workers")
        wids = fleet.lease(n, self.job, timeout=self.lease_timeout)
        if wids is None:
            raise RuntimeError(
                f"fleet could not supply {n} idle workers for job "
                f"{self.job} within {self.lease_timeout}s")
        launch_id = shm.new_launch_id(self.job)
        # per-launch telemetry/trace planes, fleet-wide pages: a grow
        # can activate any worker, so every potential rank owns a page.
        tplane = self.telemetry_plane(services, fleet.workers,
                                      launch_id=launch_id)
        trplane = self.trace_plane(services, fleet.workers,
                                   launch_id=launch_id)
        self.assignment = dict(enumerate(wids))
        self._pending = {}
        self.current_nranks = n
        fleet.funnel.register(self.job, self.store)
        ticket = fleet.make_ticket(self.job, self.lane, launch_id, spec,
                                   services, self.store)
        self._ticket = ticket
        lane_qs = fleet.data[self.lane]
        result_queue = fleet.results[self.lane]
        notify_queue = fleet.notifies[self.lane]
        try:
            for r, w in enumerate(wids):
                fleet.activate(w, ticket, rank=r)
            reports, stray_events, active = self._collect(
                _RankProcs(self), result_queue, notify_queue, n)
        finally:
            # release joiners whose un-park never arrived (a message to
            # a consumed park lands in a drained queue — harmless).
            for r in list(self._pending):
                try:
                    lane_qs[r].put({"kind": "stop"})
                except (OSError, ValueError):
                    pass
            owed = set(self.assignment.values()) | set(self._pending.values())
            stragglers = fleet.await_idle(
                owed, timeout=15.0,
                drain=lambda: self._drain(
                    lane_qs + [result_queue, notify_queue]))
            for w in stragglers:
                fleet.respawn(w)
            self._drain(lane_qs + [result_queue, notify_queue])
            fleet.funnel.unregister(self.job)
            if fleet.arena is not None:
                fleet.arena.release(self.job)
            # workers are idle (or respawned) by here: their pages are
            # quiescent, so the scrape is race-free.
            self.scrape_telemetry(tplane, services)
            if tplane is not None:
                unlink_telemetry(launch_id)
            self.scrape_trace(trplane, services)
            if trplane is not None:
                from repro.trace import unlink_trace
                unlink_trace(launch_id)
            # per-job shared-memory names: symmetric heap grid always,
            # launch-named field segments when the arena is off.
            shm.unlink_heaps(launch_id, fleet.workers)
            plugset = getattr(spec.woven, "__pp_plugs__", None)
            fields = plugset.partitioned_fields() if plugset else {}
            for f in fields:
                shm.unlink_by_name(shm.segment_name(launch_id, f))
        self._merge_events(services.log, reports, stray_events)
        end = max([spec.start_vtime]
                  + [rep[3] for rep in reports.values()
                     if rep[3] is not None])
        if any(rep[1] == _FAILED for rep in reports.values()):
            spec.injector.mark_fired()
        cancelled = [rep for rep in reports.values()
                     if rep[1] == CANCELLED]
        if cancelled:
            # cooperative, not wreckage: unwind to the service's job
            # thread before _outcome can mistake it for an error.
            raise JobCancelled(cancelled[0][2])
        return self._outcome(reports, end)

    # ------------------------------------------------------------------
    def _on_reshape(self, note: tuple) -> None:
        _, _count, old_n, new_n = note
        self.current_nranks = new_n
        if new_n > old_n:
            # rank 0 already posted the un-park messages to the lane
            # channels; supply workers to consume them.
            for r in range(old_n, new_n):
                wids = self.fleet.lease(1, self.job,
                                        timeout=self.lease_timeout)
                if wids is None:
                    # no worker: the rendezvous will stall and the
                    # collector's deadline reaps the job.
                    continue
                self.assignment[r] = wids[0]
                self._pending[r] = wids[0]
                self.fleet.park(wids[0], self._ticket, rank=r)
        else:
            for r in range(new_n, old_n):
                self.assignment.pop(r, None)
                self._pending.pop(r, None)
