"""The fleet's checkpoint funnel: one drain thread, many jobs.

The per-launch :class:`~repro.ckpt.funnel.CheckpointFunnel` serves one
master store for one launch and acks by rank.  The fleet variant is
long-lived and multiplexed: requests are keyed ``(job_tag, worker_id)``
— acks route by *worker* (a worker serves one rank of one job at a
time), writes route by *job* to that job's registered namespaced
sub-store, so two jobs' checkpoints can never interleave into one
store's delta chain.  It also answers the one non-checkpoint RPC the
fleet needs at job start: ``arena`` leases capacity-classed field
segments from the :class:`~repro.service.arena.SegmentArena` (rank 0
asks during field placement, when it alone knows the field shapes).
"""

from __future__ import annotations

import queue as _queue
import traceback
from typing import TYPE_CHECKING

from repro.ckpt.funnel import _OP_STOP, CheckpointFunnel

if TYPE_CHECKING:  # pragma: no cover
    from repro.ckpt.store import CheckpointStore
    from repro.service.arena import SegmentArena

_OP_ARENA = "arena"


class FleetFunnel(CheckpointFunnel):
    """Parent side: drains all jobs' worker requests into their stores."""

    def __init__(self, mpctx, workers: int, arena: "SegmentArena | None"
                 ) -> None:
        # no single master store: every write names its job's sub-store.
        super().__init__(store=None, mpctx=mpctx, nranks=workers)
        self.arena = arena
        #: job tag -> that job's namespaced CheckpointStore.
        self._stores: dict[str, CheckpointStore] = {}

    # ------------------------------------------------------------------
    def register(self, job: str, store: "CheckpointStore") -> None:
        self._stores[job] = store

    def unregister(self, job: str) -> None:
        self._stores.pop(job, None)

    def client(self, rank):  # pragma: no cover - workers build their own
        raise NotImplementedError(
            "fleet workers build their FunnelStore from the boot queues")

    # ------------------------------------------------------------------
    def _lease(self, job: str, specs) -> tuple:
        try:
            if self.arena is None:
                return ("ok", None, None, None)
            return ("ok", self.arena.lease(job, specs), None, None)
        except Exception:  # noqa: BLE001 - worker must not hang on us
            return ("error", traceback.format_exc(), None, None)

    def _serve(self) -> None:
        while True:
            try:
                op, key, shard_rank, payload = self.requests.get(timeout=600.0)
            except _queue.Empty:  # orphaned funnel: give up quietly
                return
            if op == _OP_STOP:
                return
            job, wid = key
            if op == _OP_ARENA:
                self.acks[wid].put(self._lease(job, payload))
                continue
            store = self._stores.get(job)
            if store is None:
                self.acks[wid].put(
                    ("error", f"no store registered for job {job!r}",
                     None, None))
                continue
            self.acks[wid].put(self._handle(op, shard_rank, payload,
                                            store=store))
