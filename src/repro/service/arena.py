"""Shared-memory segment arena: reuse field segments across jobs.

A one-shot launch allocates a shared segment per partitioned field and
unlinks it in its ``finally`` — correct, but for a service running
hundreds of short jobs the allocate/zero/unlink cycle is pure overhead
on every one of them.  The arena keeps the segments instead: each lease
rounds the field's byte size up to a power-of-two **capacity class** and
hands out a free segment of that class (allocating only when the class's
free list is empty), and a release returns the job's segments to the
free lists intact.  Field arrays of different shapes and dtypes share a
class as long as they round to the same capacity — an ndarray view maps
the first ``nbytes`` of the segment, the tail is slack.

Nothing is unlinked until :meth:`SegmentArena.unlink_all` at fleet
shutdown, so the steady-state segment population is the high-water mark
of concurrent demand, not the job count.  Correctness does not depend on
segment freshness: rank 0 seeds every placed field from its
authoritative constructor copy (the same scatter-from-root convention a
cold launch uses), so a recycled segment's stale bytes are never read.
"""

from __future__ import annotations

import itertools
import threading

import numpy as np

from repro.dsm import shm


def _capacity(nbytes: int) -> int:
    """The smallest power-of-two capacity holding ``nbytes``."""
    return 1 << max(0, int(nbytes) - 1).bit_length()


class SegmentArena:
    """Capacity-classed free lists of fleet-scoped shared segments.

    Thread-safe: leases arrive on the fleet funnel's drain thread while
    releases arrive on per-job service threads.
    """

    def __init__(self, fleet_id: str) -> None:
        self.fleet_id = fleet_id
        self._seq = itertools.count()
        self._lock = threading.Lock()
        #: capacity -> names of free segments of that capacity.
        self._free: dict[int, list[str]] = {}
        #: job tag -> [(name, capacity), ...] currently leased.
        self._leased: dict[str, list[tuple[str, int]]] = {}
        #: every name this arena ever created (for unlink_all).
        self._all: list[str] = []

    # ------------------------------------------------------------------
    def lease(self, job: str, specs: list[tuple[str, tuple, str]]
              ) -> dict[str, str]:
        """Lease one segment per ``(field, shape, dtype)`` spec.

        Returns ``{field: segment_name}``; the caller attaches each
        name with the field's own shape/dtype (capacity >= nbytes by
        construction).
        """
        out: dict[str, str] = {}
        with self._lock:
            held = self._leased.setdefault(job, [])
            for field, shape, dtype in specs:
                nbytes = int(np.dtype(dtype).itemsize
                             * np.prod(shape, dtype=np.int64))
                cap = _capacity(nbytes)
                free = self._free.get(cap)
                if free:
                    name = free.pop()
                else:
                    name = (f"{shm.SHM_PREFIX}-{self.fleet_id}"
                            f"-arena-{next(self._seq):x}")
                    seg = shm.ShmSegment.allocate(name, (cap,), np.uint8)
                    seg.close()  # the parent holds no mapping, only names
                    self._all.append(name)
                held.append((name, cap))
                out[field] = name
        return out

    def release(self, job: str) -> None:
        """Return every segment the job holds to its free list."""
        with self._lock:
            for name, cap in self._leased.pop(job, []):
                self._free.setdefault(cap, []).append(name)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            free = sum(len(v) for v in self._free.values())
            leased = sum(len(v) for v in self._leased.values())
            return {"segments": len(self._all), "free": free,
                    "leased": leased}

    def unlink_all(self) -> None:
        """Remove every arena segment (fleet shutdown)."""
        with self._lock:
            for name in self._all:
                shm.unlink_by_name(name)
            self._all.clear()
            self._free.clear()
            self._leased.clear()
