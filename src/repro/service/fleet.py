"""The warm worker fleet: pre-forked rank processes, reused across jobs.

One fork per worker for the *fleet's* lifetime, not one per rank per
job.  Between jobs a worker blocks on its control channel — the same
park the elastic membership protocol uses for surplus ranks — and a job
activation is a control message, not a fork: the worker rebuilds the
woven class from the ticket, maps the leased segments, and runs
:func:`repro.exec.multiproc._rank_main` exactly as a cold launch would.
Everything expensive is process-scoped and survives jobs:

* the worker's :class:`~repro.dsm.shm.BufferPool` slab ring and
  :class:`~repro.dsm.shm.DataPlane` (fleet-scoped names) — collective
  payloads and packed snapshots of *every* job ride the same slabs;
* the mailbox fabrics: each of the fleet's ``lanes`` (concurrent job
  slots) owns a fleet-wide rank-channel fabric plus result/notify
  queues, created once and drained between jobs;
* the checkpoint funnel: one drain thread for all jobs
  (:class:`~repro.service.funnel.FleetFunnel`), routing each write to
  the owning job's namespaced store.

Per-job state is narrow by construction: a launch id (field segments
when the arena is off, symmetric heaps always), a steer block serial,
and the job ticket itself.  Workers report back on a fleet-wide event
queue (``("joined", ...)`` on ticket pickup, ``("idle", ...)`` on
return), which is what the fleet's lease/await bookkeeping runs on.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.ckpt.funnel import FunnelStore
from repro.dsm import shm
from repro.exec.base import PhaseServices, PhaseSpec
from repro.exec.multiproc import (
    MultiprocessBackend,
    _ChildTask,
    _place_shared_fields,
    _portable_woven,
    _preferred_start_method,
    _rank_main,
    _wait_for_control,
)
from repro.service.arena import SegmentArena
from repro.service.funnel import FleetFunnel
from repro.service.steer import JobCancelled, SteerBlock, SteerClient, steer_name
from repro.util.events import EventLog

#: worker report status for a steering cancel (extends the base set).
CANCELLED = "cancelled"


@dataclass
class JobTicket:
    """Everything a worker needs to serve one rank of one job.

    Travels through a control queue, so everything here is pickled:
    the woven class ships portable (base + plug set, re-woven in the
    worker) and no queue rides along — the worker already holds the
    fleet's queues from its fork.
    """

    job: str
    lane: int
    launch_id: str
    spec: PhaseSpec            # woven replaced by its portable base
    plugs: object | None
    machine: object
    policy: object
    ckpt_strategy: str
    backend: "_FleetWorkerBackend"
    max_ranks: int
    funnel_async: bool
    funnel_depth: int
    #: the job store's chunking policy when it is a CAS store — workers
    #: then funnel chunk refs + missing payloads instead of snapshots.
    chunk_params: object | None = None
    #: whether the parent created a telemetry plane for this launch —
    #: workers attach their rank page only when told to.
    telemetry: bool = False
    #: same deal for the trace plane (plus its ring capacity, which
    #: the attaching worker needs to compute the segment shape).
    trace: bool = False
    trace_capacity: int = 0


class _FleetWorkerBackend(MultiprocessBackend):
    """The worker-side backend a fleet job runs under.

    Picklable by construction (no queues, no fleet reference): it adds
    the three service behaviours to the stock multiprocess worker —
    steering (a :class:`SteerClient` on every context), arena field
    placement (rank 0 leases capacity-classed segments over the funnel
    instead of allocating), and the cancel unwind classification.
    """

    name = "fleet-worker"

    def __init__(self, steer_block: str | None, use_arena: bool,
                 data_plane: bool, plane_threshold: int | None,
                 start_method: str) -> None:
        super().__init__(start_method=start_method, data_plane=data_plane,
                         plane_threshold=plane_threshold)
        self.steer_block = steer_block
        self.use_arena = use_arena

    def make_context(self, spec, services, rankctx=None, team=None,
                     reshaper=None):
        ctx = super().make_context(spec, services, rankctx=rankctx,
                                   team=team, reshaper=reshaper)
        if self.steer_block is not None:
            ctx.steer = SteerClient(self.steer_block)
        return ctx

    def place_fields(self, ctx, instance, comm, launch_id: str):
        names = None
        if self.use_arena and ctx.rank == 0:
            specs = []
            for f in sorted(ctx.partitioned):
                arr = getattr(instance, f, None)
                if isinstance(arr, np.ndarray):
                    specs.append((f, arr.shape, arr.dtype.str))
            # rank 0 alone knows the field shapes (it builds the
            # instance first), so the arena lease is its RPC to make.
            names, _, _ = ctx.store._rpc("arena", specs)
        return _place_shared_fields(ctx, instance, comm, launch_id,
                                    names_of=names)

    def classify_unwind_report(self, exc: BaseException):
        if isinstance(exc, JobCancelled):
            return CANCELLED, exc.count
        return super().classify_unwind_report(exc)


@dataclass
class _WorkerBoot:
    """One worker's share of the fleet plumbing (Process ctor args —
    queues are picklable there, unlike through other queues)."""

    fleet_id: str
    wid: int
    control: object
    lanes: list          # lanes[lane][rank] -> channel
    results: list        # lanes' result queues
    notifies: list       # lanes' notify queues
    events: object       # fleet-wide worker lifecycle events
    requests: object     # fleet funnel requests
    ack: object          # this worker's funnel ack queue
    data_plane: bool
    plane_threshold: int | None


def _worker_main(boot: _WorkerBoot) -> None:
    """A fleet worker's life: park on control, serve a rank, repeat.

    ``activate`` runs rank ``msg["rank"]`` of the ticket's job;
    ``park`` blocks on the job's lane channel instead, waiting for the
    un-park message a growing membership's rank 0 posts (the elastic
    joiner path, with the fleet standing in for the pre-forked surplus).
    Either way the segment runs with ``repark=False``: a retiring rank
    returns here — to the *fleet's* pool — rather than parking inside
    the job.
    """
    plane: shm.DataPlane | None = None
    if boot.data_plane:
        plane = shm.DataPlane(shm.BufferPool(boot.fleet_id, boot.wid),
                              threshold=boot.plane_threshold)
    try:
        while True:
            msg = _wait_for_control(boot.control)
            kind = msg.get("kind")
            if kind == "stop":
                return
            if kind not in ("activate", "park"):
                continue
            t: JobTicket = msg["ticket"]
            rank: int = msg["rank"]
            boot.events.put(("joined", boot.wid, t.job, rank))
            how = "error"
            try:
                store = FunnelStore(
                    rank=(t.job, boot.wid), requests=boot.requests,
                    ack=boot.ack, is_async=t.funnel_async,
                    depth=t.funnel_depth, chunk_params=t.chunk_params)
                services = PhaseServices(
                    machine=t.machine, log=EventLog(), store=None,
                    policy=t.policy, ckpt_strategy=t.ckpt_strategy,
                    advisor=None)
                task = _ChildTask(
                    rank, t.spec, services, t.backend,
                    boot.lanes[t.lane], boot.results[t.lane],
                    boot.notifies[t.lane], store, t.launch_id,
                    t.max_ranks)
                if t.plugs is not None:
                    # the ticket pre-portabled the spec; restore the
                    # plug set so the worker re-weaves.
                    task.plugs = t.plugs
                # the boot services carry no registry; the ticket says
                # whether the job's parent is scraping a plane.
                task.telemetry = t.telemetry
                task.trace = t.trace
                task.trace_capacity = t.trace_capacity
                if plane is not None:
                    # symmetric heaps are the one per-job plane piece:
                    # window allocations must not collide across jobs.
                    plane.heap_launch_id = t.launch_id
                how = _rank_main(rank, task, plane=plane, repark=False,
                                 parked=(kind == "park"))
            except BaseException:  # noqa: BLE001 - the worker survives;
                how = "error"      # the parent times the rank out
            finally:
                if plane is not None:
                    if plane.heap is not None:
                        plane.heap.close()
                        plane.heap = None
                    plane.heap_launch_id = None
                boot.events.put(("idle", boot.wid, t.job, how))
    finally:
        if plane is not None:
            plane.close()


class WorkerFleet:
    """Parent side: the pool of warm workers and its lease bookkeeping.

    ``workers`` processes serve up to ``lanes`` concurrent jobs; a job
    of ``n`` ranks leases ``n`` workers and a lane.  Thread-safe — the
    scheduler, per-job service threads and the event pump all touch the
    lease state under one condition variable.
    """

    proc_prefix = "fleet-w"

    def __init__(self, workers: int = 4, lanes: int = 1,
                 data_plane: bool = True, plane_threshold: int | None = None,
                 start_method: str | None = None, arena: bool = True) -> None:
        self.workers = workers
        self.lanes = lanes
        self.data_plane = data_plane
        self.plane_threshold = plane_threshold
        self.start_method = start_method or _preferred_start_method()
        self.fleet_id = shm.new_launch_id("fleet")
        self.mpctx = mp.get_context(self.start_method)
        self.control = [self.mpctx.Queue() for _ in range(workers)]
        self.data = [[self.mpctx.Queue() for _ in range(workers)]
                     for _ in range(lanes)]
        self.results = [self.mpctx.Queue() for _ in range(lanes)]
        self.notifies = [self.mpctx.Queue() for _ in range(lanes)]
        self.events = self.mpctx.Queue()
        self.arena: SegmentArena | None = \
            SegmentArena(self.fleet_id) if arena else None
        self.funnel = FleetFunnel(self.mpctx, workers, self.arena)
        self.steer = [SteerBlock(steer_name(self.fleet_id, lane))
                      for lane in range(lanes)]
        self.procs: list = [None] * workers
        self._cv = threading.Condition()
        self._idle: set[int] = set()
        self._busy: dict[int, str] = {}
        self._stopping = False
        self._pump_thread: threading.Thread | None = None
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> "WorkerFleet":
        if self._started:
            return self
        for w in range(self.workers):
            self._spawn(w)
        self.funnel.start()
        self._pump_thread = threading.Thread(target=self._pump, daemon=True,
                                             name="fleet-events")
        self._pump_thread.start()
        with self._cv:
            self._idle = set(range(self.workers))
        self._started = True
        return self

    def _spawn(self, wid: int) -> None:
        boot = _WorkerBoot(
            fleet_id=self.fleet_id, wid=wid, control=self.control[wid],
            lanes=self.data, results=self.results, notifies=self.notifies,
            events=self.events, requests=self.funnel.requests,
            ack=self.funnel.acks[wid], data_plane=self.data_plane,
            plane_threshold=self.plane_threshold)
        p = self.mpctx.Process(target=_worker_main, args=(boot,),
                               daemon=True,
                               name=f"{self.proc_prefix}{wid}")
        self.procs[wid] = p
        p.start()

    def _pump(self) -> None:
        import queue as _queue

        while not self._stopping:
            try:
                ev = self.events.get(timeout=0.25)
            except _queue.Empty:
                continue
            except (OSError, ValueError):
                return
            if ev[0] == "idle":
                with self._cv:
                    self._busy.pop(ev[1], None)
                    self._idle.add(ev[1])
                    self._cv.notify_all()

    # ------------------------------------------------------------------
    def idle_count(self) -> int:
        with self._cv:
            return len(self._idle)

    def job_of(self, wid: int) -> str | None:
        with self._cv:
            return self._busy.get(wid)

    def lease(self, n: int, job: str, timeout: float = 30.0
              ) -> list[int] | None:
        """Claim ``n`` idle workers for ``job`` (None if the fleet cannot
        supply them within ``timeout``)."""
        deadline = time.monotonic() + timeout
        with self._cv:
            while len(self._idle) < n:
                left = deadline - time.monotonic()
                if left <= 0:
                    return None
                self._cv.wait(left)
            wids = sorted(self._idle)[:n]
            for w in wids:
                self._idle.discard(w)
                self._busy[w] = job
            return wids

    def activate(self, wid: int, ticket: JobTicket, rank: int) -> None:
        self.control[wid].put({"kind": "activate", "ticket": ticket,
                               "rank": rank})

    def park(self, wid: int, ticket: JobTicket, rank: int) -> None:
        """Park a leased worker on the job's lane channel as rank
        ``rank`` — it consumes the un-park message a growing membership
        posts there and joins via entry replay."""
        self.control[wid].put({"kind": "park", "ticket": ticket,
                               "rank": rank})

    def await_idle(self, wids: set[int], timeout: float,
                   drain=None) -> list[int]:
        """Wait until every worker in ``wids`` is back in the pool;
        returns the stragglers.  ``drain`` (optional callable) runs each
        poll round to keep lane pipes moving while workers flush."""
        deadline = time.monotonic() + timeout
        while True:
            if drain is not None:
                drain()
            with self._cv:
                missing = [w for w in wids if w not in self._idle]
                if not missing:
                    return []
                left = deadline - time.monotonic()
                if left <= 0:
                    return missing
                self._cv.wait(min(left, 0.2))

    def respawn(self, wid: int) -> None:
        """Replace a wedged worker (terminated mid-job or unresponsive).

        The replacement re-creates the worker's slab ring, so the old
        one's fleet-scoped names are unlinked first.
        """
        p = self.procs[wid]
        if p is not None:
            if p.is_alive():
                p.terminate()
            p.join(timeout=5.0)
            try:
                p.close()
            except ValueError:
                pass
        for s in range(shm.POOL_SLOTS):
            shm.unlink_by_name(shm.pool_slab_name(self.fleet_id, wid, s))
        MultiprocessBackend._drain([self.control[wid]])
        self._spawn(wid)
        with self._cv:
            self._busy.pop(wid, None)
            self._idle.add(wid)
            self._cv.notify_all()

    # ------------------------------------------------------------------
    def make_ticket(self, job: str, lane: int, launch_id: str,
                    spec: PhaseSpec, services: PhaseServices,
                    store) -> JobTicket:
        base, plugs = _portable_woven(spec.woven)
        if plugs is not None:
            spec = replace(spec, woven=base)
        wbackend = _FleetWorkerBackend(
            steer_block=self.steer[lane].name,
            use_arena=self.arena is not None,
            data_plane=self.data_plane,
            plane_threshold=self.plane_threshold,
            start_method=self.start_method)
        return JobTicket(
            job=job, lane=lane, launch_id=launch_id, spec=spec,
            plugs=plugs, machine=services.machine, policy=services.policy,
            ckpt_strategy=services.ckpt_strategy, backend=wbackend,
            max_ranks=self.workers, funnel_async=store.is_async,
            funnel_depth=store.writer.depth if store.is_async else 0,
            chunk_params=getattr(store, "chunk_params", None),
            telemetry=services.metrics is not None,
            trace=services.trace is not None,
            trace_capacity=(services.trace.capacity
                            if services.trace is not None else 0))

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Drain the fleet: stop workers, funnel, queues; unlink every
        fleet-scoped shared-memory name."""
        if not self._started:
            return
        self._stopping = True
        for w in range(self.workers):
            try:
                self.control[w].put({"kind": "stop"})
            except (OSError, ValueError):
                pass
        for p in self.procs:
            if p is not None and p.pid is not None:
                p.join(timeout=10.0)
        for p in self.procs:
            if p is not None and p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        for p in self.procs:
            if p is not None:
                try:
                    p.close()
                except ValueError:
                    pass
        self.funnel.stop()
        if self._pump_thread is not None:
            self._pump_thread.join(timeout=5.0)
        flat = (self.control + [q for lane in self.data for q in lane]
                + self.results + self.notifies + [self.events])
        MultiprocessBackend._drain(flat, close=True)
        for blk in self.steer:
            blk.close()
            blk.unlink()
        if self.arena is not None:
            self.arena.unlink_all()
        shm.unlink_pool(self.fleet_id, self.workers)
        self._started = False

    def __enter__(self) -> "WorkerFleet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()
