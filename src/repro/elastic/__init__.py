"""Elastic reshape: grow/shrink rank teams at safe points, no relaunch.

The paper reshapes a running application at safe points, but only the
thread dimension reshapes in place — changing the rank count used to
tear the phase down and relaunch it, re-paying launch, scatter and (for
process backends) fork/segment costs at every adaptation step.  This
package turns a rank-count change into a *membership transition*:

* :mod:`repro.elastic.plan` — :class:`ReshapePlan`: who survives, joins
  and retires, and the scatter-from-surviving-owners move schedule for
  every partitioned field, derived from the partition layouts;
* :mod:`repro.elastic.protocol` — the safe-point choreography (quiesce,
  move, switch, rendezvous, identity update), the :class:`JoinReplay`
  call-stack rebuild for joining ranks, the :class:`RankRetired` unwind
  for leaving ones, and the :class:`RankReshaper` hook backends
  implement.

Backends advertise the ability via ``Capabilities.elastic_ranks``; the
safe-point protocol then prefers an in-place reshape over the
unwind-and-relaunch path, which remains the fallback (and the recovery
path) everywhere else.
"""

from repro.elastic.plan import FieldMove, ReshapePlan
from repro.elastic.protocol import (
    TAG_RESHAPE_MOVE,
    TAG_RESHAPE_STATE,
    JoinReplay,
    RankReshaper,
    RankRetired,
    apply_new_identity,
    execute_moves,
    join_rendezvous,
    movable_fields,
    refresh_new_members,
)

__all__ = [
    "FieldMove",
    "JoinReplay",
    "RankReshaper",
    "RankRetired",
    "ReshapePlan",
    "TAG_RESHAPE_MOVE",
    "TAG_RESHAPE_STATE",
    "apply_new_identity",
    "execute_moves",
    "join_rendezvous",
    "movable_fields",
    "refresh_new_members",
]
