"""Reshape plans: the data-movement map of one membership transition.

A rank-count change at a safe point is a *membership transition*: some
ranks survive with their identity intact, some join, some retire.  A
:class:`ReshapePlan` fixes the convention (survivors keep their rank
ids — ranks ``0..min(old, new)-1`` — joiners take the fresh ids above,
retirees are the old ids above the new size) and derives from the
:mod:`repro.dsm.partition` layouts exactly which index regions of each
partitioned field must move between which ranks: every index a *new*
owner needs (its owned region, plus ghost planes for halo'd block
layouts) that it did not already own under the *old* layout is sent by
the unique old owner of that index — scatter-from-surviving-owners, no
round-trip through member 0.

The plan is pure data, computed identically on every rank from
``(old_n, new_n)`` and the field layouts, so the ranks agree on the move
schedule without any negotiation traffic — the same determinism argument
as checkpoint policies and adaptation plans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsm.partition import BlockLayout, Layout


@dataclass(frozen=True)
class FieldMove:
    """One point-to-point transfer of a field region.

    ``src`` is an *old* rank id, ``dst`` a *new* rank id (the two spaces
    coincide for survivors), ``idx`` the global indices along the
    layout's axis.
    """

    src: int
    dst: int
    idx: np.ndarray

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("a move between a rank and itself is a no-op")


@dataclass(frozen=True)
class ReshapePlan:
    """Membership map of one ``old_n -> new_n`` rank reshape."""

    old_n: int
    new_n: int

    def __post_init__(self) -> None:
        if self.old_n < 1 or self.new_n < 1:
            raise ValueError("rank counts must be >= 1")
        if self.old_n == self.new_n:
            raise ValueError("a reshape must change the rank count")

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def growing(self) -> bool:
        return self.new_n > self.old_n

    @property
    def shrinking(self) -> bool:
        return self.new_n < self.old_n

    @property
    def survivors(self) -> tuple[int, ...]:
        """Old ranks that continue, keeping their ids."""
        return tuple(range(min(self.old_n, self.new_n)))

    @property
    def joining(self) -> tuple[int, ...]:
        """New rank ids with no prior identity (grow only)."""
        return tuple(range(self.old_n, self.new_n)) if self.growing else ()

    @property
    def retiring(self) -> tuple[int, ...]:
        """Old rank ids that leave the membership (shrink only)."""
        return tuple(range(self.new_n, self.old_n)) if self.shrinking else ()

    def renumber(self, old_rank: int) -> int | None:
        """New id of ``old_rank`` (identity for survivors, None if
        retired)."""
        if not (0 <= old_rank < self.old_n):
            raise ValueError(f"rank {old_rank} not in the old membership")
        return old_rank if old_rank < self.new_n else None

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def needed(self, layout: Layout, n: int, new_rank: int) -> np.ndarray:
        """Indices ``new_rank`` must hold valid after the transition.

        The owned region under the new layout, widened to the ghost
        planes for halo'd block layouts so stencil code can run before
        its first post-reshape halo exchange.
        """
        if isinstance(layout, BlockLayout) and layout.halo > 0:
            lo, hi = layout.halo_bounds(n, new_rank, self.new_n)
            return np.arange(lo, hi)
        return layout.owned(n, new_rank, self.new_n)

    def moves(self, layout: Layout, n: int) -> list[FieldMove]:
        """The transfer schedule for one field of extent ``n``.

        Deterministic order (by destination, then source) — every rank
        computes the identical list and walks it in lockstep, sending
        the moves it sources and receiving the ones it sinks.
        """
        out: list[FieldMove] = []
        for dst in range(self.new_n):
            need = self.needed(layout, n, dst)
            for src in range(self.old_n):
                if src == dst:
                    # a survivor's pre-owned data is already in place
                    # (in-place storage: full-size array per rank).
                    continue
                have = layout.owned(n, src, self.old_n)
                idx = np.intersect1d(need, have, assume_unique=False)
                if idx.size:
                    out.append(FieldMove(src=src, dst=dst, idx=idx))
        return out

    def __str__(self) -> str:  # pragma: no cover - debug aid
        kind = "grow" if self.growing else "shrink"
        return f"ReshapePlan({kind} {self.old_n}->{self.new_n})"
