"""The safe-point membership protocol: reshape ranks without relaunch.

Every rank of the old membership reaches the same safe point holding the
same :class:`~repro.core.adaptation.AdaptStep` (plans are deterministic),
so the transition needs no negotiation — only choreography:

1. **quiesce** — a barrier on the old membership.  All collectives that
   precede the safe point have completed on every rank, so every mailbox
   is drained of user traffic and the communicator is safe to reshape.
2. **shrink**: retiring ranks first push the field regions they own to
   the surviving new owners (on the old communicator, where everyone
   still has an endpoint), then the membership switches and the retirees
   unwind their call stack via :class:`RankRetired`.
3. **grow**: the membership switches first (joiners have no endpoint
   before it), new ranks rebuild their call stack by replaying the entry
   to the transition safe point (:class:`JoinReplay` — the same replay
   mechanism restart uses, minus the snapshot), then everyone meets at a
   rendezvous barrier on the new communicator and the surviving owners
   scatter the moved regions plus the root-held whole-array state.
4. **identity update** — every rank adopts the new configuration: rank
   count, core-contention factor for its virtual clock, and (rank 0) the
   :class:`~repro.core.adaptation.AdaptationRecord` that reports the
   reshape upstream.  Joiner clocks are seeded at the transition epoch,
   so virtual time stays monotone across the transition; per-rank RNG
   streams are re-derived by the replayed constructor, which keys them
   by logical index, not rank count.

Backends provide the substrate-specific halves (how a membership
actually switches — spawn rank threads, un-park processes, ...) through
a :class:`RankReshaper`; the data movement and identity bookkeeping here
are shared by all of them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from time import perf_counter
from typing import TYPE_CHECKING

import numpy as np

from repro.ckpt.replay import ReplayState
from repro.core.adaptation import AdaptationRecord, AdaptStep
from repro.dsm.comm import TAG_COLL
from repro.elastic.plan import ReshapePlan
from repro.telemetry import schema as _ts
from repro.telemetry.plane import writer as telemetry_writer
from repro.trace import schema as _tc
from repro.trace.plane import tracer as trace_writer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.context import ExecutionContext
    from repro.vtime.machine import MachineModel

#: reshape plumbing tags (region moves; root -> joiner state refresh).
TAG_RESHAPE_MOVE = TAG_COLL + 40
TAG_RESHAPE_STATE = TAG_COLL + 41


class RankRetired(BaseException):
    """Control-flow signal: this rank leaves the membership at a shrink.

    Unwinds the retiring rank's call stack out of the woven entry — the
    paper's thread-retirement idea ("executing ... until the thread gets
    to the end of the parallel region") lifted to the rank dimension,
    where the whole entry is the region.  ``BaseException`` so domain
    ``except Exception`` handlers cannot swallow it; backends catch it at
    their rank-entry boundary and treat it as a normal (resultless) end
    of that rank's participation.
    """

    def __init__(self, count: int, rank: int) -> None:
        super().__init__(f"rank {rank} retired at safe point {count}")
        self.count = count
        self.rank = rank


class JoinReplay(ReplayState):
    """Replay driver for a rank joining mid-phase.

    Like a restart replay there is no data to restore along the way —
    the joiner skips ignorable methods and counts safe points — but the
    completion differs: instead of loading a snapshot, the joiner enters
    the transition rendezvous and receives its partitions from the
    surviving owners.
    """

    def __init__(self, target: int, reshaper: "RankReshaper",
                 plan: ReshapePlan, step: AdaptStep) -> None:
        super().__init__(target=target, snapshot=None)
        self.reshaper = reshaper
        self.plan = plan
        self.step = step

    def complete(self, ctx: "ExecutionContext", count: int) -> None:
        self.reshaper.complete_join(ctx, self, count)


class RankReshaper(ABC):
    """Backend hook turning a rank-count AdaptStep into a membership
    transition.  One instance serves one phase launch."""

    @abstractmethod
    def reshape(self, ctx: "ExecutionContext", step: AdaptStep,
                count: int) -> bool:
        """Run the transition from an *old-membership* rank.

        Called by every current rank at the same safe point.  Returns
        False (deterministically, before any communication) when the
        backend cannot reshape to ``step.config`` in place — the caller
        then falls back to the unwind-and-relaunch path.  Retiring ranks
        do not return: they raise :class:`RankRetired`.
        """

    @abstractmethod
    def complete_join(self, ctx: "ExecutionContext", replay: JoinReplay,
                      count: int) -> None:
        """Run the joiner's half of the rendezvous (new-membership rank)."""


# ---------------------------------------------------------------------------
# the shared choreography steps
# ---------------------------------------------------------------------------
def _axis_take(arr: np.ndarray, idx: np.ndarray, axis: int) -> np.ndarray:
    return np.take(arr, idx, axis=axis)


def movable_fields(ctx: "ExecutionContext") -> list[str]:
    """Partitioned fields whose regions travel rank-to-rank.

    ``whole_at_safepoints`` fields are whole on every member (refreshed
    root -> joiner instead); fields the backend placed in cross-process
    shared memory are one physical copy — membership changes need no
    data movement for them at all, which is precisely why the
    multiprocessing backend's reshape is cheap.
    """
    out = []
    for name in sorted(ctx.partitioned):
        part = ctx.partitioned[name]
        if part.whole_at_safepoints or ctx._shared(name):
            continue
        if isinstance(getattr(ctx.instance, name, None), np.ndarray):
            out.append(name)
    return out


def _move_payload(arr: np.ndarray, idx: np.ndarray, axis: int):
    """Source-side packing of one move: ``(values, owned, put_idx)``.

    A contiguous index run becomes a *slice view* of the field with
    ``(lo, hi)`` bounds — when the owning rank registered the field's
    segment on its data plane (``DataPlane.register_borrow``) that view
    ships as a zero-copy borrowed region, and the choreography's
    trailing barrier (:func:`join_rendezvous` / the backends' shrink
    barrier) is the borrow's release fence.  Non-contiguous runs fall
    back to a fresh ``np.take`` staging buffer (owned: no defensive
    copy needed).
    """
    idx = np.asarray(idx)
    if idx.size and np.array_equal(
            idx, np.arange(idx[0], idx[0] + idx.size)):
        lo, hi = int(idx[0]), int(idx[0]) + int(idx.size)
        sl: list = [slice(None)] * arr.ndim
        sl[axis] = slice(lo, hi)
        view = arr[tuple(sl)]
        if view.flags.c_contiguous:
            return view, False, (lo, hi)
        return np.ascontiguousarray(view), True, (lo, hi)
    return _axis_take(arr, idx, axis), True, idx


def execute_moves(ctx: "ExecutionContext", plan: ReshapePlan, comm) -> None:
    """Walk the move schedule one-sidedly: put sourced regions into the
    new owners' windows, fence the incoming schedule.

    Every participating rank iterates the identical deterministic list.
    Each movable field is exposed as a window (``mv:<field>``) up
    front; sources *put* their regions straight at the destination
    indices (puts never block), and one fence per rank completes the
    incoming moves in schedule order — deterministic, so the clock
    coupling is bit-reproducible, and the envelope carries its window
    name, so interleavings across fields between one pair still land
    correctly.  Target regions of distinct moves are disjoint by
    construction (each region has exactly one new owner), which is what
    makes the one-sided port value-identical to the old send/recv walk.
    On a shrink this runs on the *old* communicator (retiring sources
    still have endpoints, and fence an empty schedule); on a grow on
    the *new* one (joining sinks do).
    """
    me = ctx.rank
    fields = []
    for name in movable_fields(ctx):
        part = ctx.partitioned[name]
        arr = getattr(ctx.instance, name)
        axis = part.layout.axis
        moves = list(plan.moves(part.layout, arr.shape[axis]))
        if moves:
            fields.append((name, arr, axis, moves))
    schedule: list[int] = []
    tele = telemetry_writer()
    tr = trace_writer()
    tw0 = perf_counter() if tr.active else 0.0
    for name, arr, axis, moves in fields:
        comm.win_expose("mv:" + name, arr)
        for mv in moves:
            if mv.src == me:
                values, owned, put_idx = _move_payload(arr, mv.idx, axis)
                if tele.active:
                    tele.inc(_ts.MOVE_BYTES, float(values.nbytes))
                comm.put("mv:" + name, values, mv.dst, put_idx,
                         axis=axis, owned=owned)
            elif mv.dst == me:
                schedule.append(mv.src)
    try:
        comm.fence(schedule)
    finally:
        for name, _arr, _axis, _moves in fields:
            comm.win_drop("mv:" + name)
    if tr.active:
        tr.span(_tc.MOVES, tw0, a=ctx.clock().now, b=float(len(schedule)))


def refresh_new_members(ctx: "ExecutionContext", plan: ReshapePlan,
                        comm) -> None:
    """Root -> joiner refresh of the state replay cannot reconstruct.

    Whole-at-safepoint partitioned fields and non-partitioned SafeData
    are identical on every surviving member (SPMD lockstep), so member 0
    sends its copies to each joiner — the same field treatment as a
    distributed restore, with targeted sends instead of a broadcast.

    Fields the backend gave a commit slab (``ctx.slab_whole``) skip the
    sends entirely: member 0 commits its whole scratch into the shared
    slab once and every joiner copies it out after one barrier — a
    memcpy per side instead of a pickled payload per joiner, which is
    most of a short job's elastic-activation latency.
    """
    if not plan.joining:
        return
    names = [f for f in ctx.safedata
             if (part := ctx.partitioned.get(f)) is None
             or part.whole_at_safepoints]
    if not names:
        return
    me = ctx.rank
    slab = [f for f in names if f in ctx.slab_whole]
    wired = [f for f in names if f not in ctx.slab_whole]
    if slab:
        if me == 0:
            for f in slab:
                ctx.slab_whole[f][...] = getattr(ctx.instance, f)
        comm.barrier()  # commits land before any joiner's read
        if me in plan.joining:
            for f in slab:
                getattr(ctx.instance, f)[...] = ctx.slab_whole[f]
    if me == 0:
        for dst in plan.joining:
            for f in wired:
                comm.send(getattr(ctx.instance, f), dst, TAG_RESHAPE_STATE)
    elif me in plan.joining:
        for f in wired:
            setattr(ctx.instance, f,
                    comm.recv(source=0, tag=TAG_RESHAPE_STATE))


def join_rendezvous(ctx: "ExecutionContext", plan: ReshapePlan,
                    step: AdaptStep, count: int, comm,
                    machine: "MachineModel") -> None:
    """The new membership's meeting point after a grow switch.

    Symmetric by construction: surviving ranks run it at the tail of
    ``RankReshaper.reshape`` and joiners from ``complete_join``, so the
    two sides can never desynchronise — barrier with everyone present,
    move the partitioned regions to their new owners, refresh the
    joiners' root-held state, fence, adopt the new identity.
    """
    tr = trace_writer()
    tw0 = perf_counter() if tr.active else 0.0
    comm.barrier()
    execute_moves(ctx, plan, comm)
    refresh_new_members(ctx, plan, comm)
    comm.barrier()
    apply_new_identity(ctx, step, plan, count, machine)
    if tr.active:
        tr.span(_tc.RENDEZVOUS, tw0, a=ctx.clock().now, b=float(count))


def apply_new_identity(ctx: "ExecutionContext", step: AdaptStep,
                       plan: ReshapePlan, count: int,
                       machine: "MachineModel") -> None:
    """Adopt the new configuration on this (surviving or joining) rank."""
    old_config = ctx.config
    ctx.config = step.config
    ctx.rankctx.nranks = plan.new_n
    # co-location changes with the member count: re-derive the core
    # time-slicing factor exactly as a fresh launch would.
    ctx.rankctx.clock.contention = machine.contention_factor(
        ctx.rank, plan.new_n)
    now = ctx.clock().now
    ctx.log.emit("reshape", vtime=now, rank=ctx.rank, count=count,
                 ranks=plan.new_n, was=plan.old_n,
                 grew=plan.growing)
    telemetry_writer().inc(_ts.RESHAPES)
    tr = trace_writer()
    if tr.active:
        tr.instant(_tc.SWITCH, a=now, b=float(plan.new_n))
    if ctx.rank == 0:
        ctx.reshapes.append(AdaptationRecord(
            at_count=count, from_config=old_config, to_config=step.config,
            via_restart=False, vtime=now,
            extra={"in_place": True, "kind": "rank_reshape"}))
