"""JGF Crypt: IDEA encryption / decryption over a byte array.

The International Data Encryption Algorithm operating on 8-byte blocks,
vectorised with numpy uint16/uint32 arithmetic.  Embarrassingly parallel
across blocks: the work-shared loop ranges over block indices, and the
plaintext/ciphertext arrays partition block-wise.

Domain code only — plugs in :mod:`repro.apps.plugs.crypt_plugs`.
Validation: ``decrypt(encrypt(x)) == x`` for the full array.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import seeded_rng

_MOD = 0x10001  # 2^16 + 1, the IDEA multiplicative modulus


def _mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """IDEA multiplication mod 2^16+1 where 0 represents 2^16."""
    a32 = a.astype(np.int64)
    b32 = b.astype(np.int64)
    a32 = np.where(a32 == 0, 0x10000, a32)
    b32 = np.where(b32 == 0, 0x10000, b32)
    return ((a32 * b32) % _MOD & 0xFFFF).astype(np.uint16)


def _mul_inv(x: int) -> int:
    """Multiplicative inverse mod 2^16+1 (0 stands for 2^16)."""
    v = 0x10000 if x == 0 else x
    return pow(v, _MOD - 2, _MOD) & 0xFFFF


def _add_inv(x: int) -> int:
    return (-x) & 0xFFFF


class Crypt:
    """IDEA over ``n`` bytes (rounded down to whole 8-byte blocks)."""

    ROUNDS = 8

    def __init__(self, n: int = 8192, seed: int = 99) -> None:
        if n < 8:
            raise ValueError("need at least one 8-byte block")
        rng = seeded_rng(seed)
        self.nblocks = n // 8
        # one cipher block per row so block-wise layouts never split a block
        self.plain = rng.integers(0, 256, (self.nblocks, 8), dtype=np.uint8)
        self.crypt = np.zeros_like(self.plain)
        self.decrypted = np.zeros_like(self.plain)
        user_key = rng.integers(0, 1 << 16, 8, dtype=np.uint16)
        self.ekey = self._expand_key(user_key)
        self.dkey = self._invert_key(self.ekey)
        self.blocks_done = 0

    # ------------------------------------------------------------------
    # key schedule
    # ------------------------------------------------------------------
    @staticmethod
    def _expand_key(user_key: np.ndarray) -> np.ndarray:
        z = np.zeros(52, dtype=np.uint16)
        z[:8] = user_key
        for i in range(8, 52):
            # the standard 25-bit rotation schedule
            if (i & 7) < 6:
                z[i] = ((int(z[i - 7]) & 127) << 9 | int(z[i - 6]) >> 7) \
                    & 0xFFFF
            elif (i & 7) == 6:
                z[i] = ((int(z[i - 7]) & 127) << 9 | int(z[i - 14]) >> 7) \
                    & 0xFFFF
            else:
                z[i] = ((int(z[i - 15]) & 127) << 9 | int(z[i - 14]) >> 7) \
                    & 0xFFFF
        return z

    @classmethod
    def _invert_key(cls, ek: np.ndarray) -> np.ndarray:
        """Decryption key schedule.

        In round notation (encryption rounds 1..8 each use keys K1..K6,
        the output transform uses K1..K4): decryption round r draws its
        K1/K4 (inverted) and K2/K3 (negated, swapped except in round 1)
        from encryption round ``10-r`` (round 9 = output transform), and
        its K5/K6 unchanged from encryption round ``9-r``.
        """
        R = cls.ROUNDS

        def enc_round(r: int) -> list[int]:
            if r == R + 1:  # output transform
                return [int(ek[6 * R + i]) for i in range(4)]
            return [int(ek[6 * (r - 1) + i]) for i in range(6)]

        dk = np.zeros(52, dtype=np.uint16)
        for r in range(1, R + 1):
            src = enc_round(R + 2 - r)  # encryption round 10-r
            base = 6 * (r - 1)
            dk[base + 0] = _mul_inv(src[0])
            if r == 1:
                dk[base + 1] = _add_inv(src[1])
                dk[base + 2] = _add_inv(src[2])
            else:
                dk[base + 1] = _add_inv(src[2])  # swapped
                dk[base + 2] = _add_inv(src[1])
            dk[base + 3] = _mul_inv(src[3])
            k56 = enc_round(R + 1 - r)  # encryption round 9-r
            dk[base + 4] = k56[4]
            dk[base + 5] = k56[5]
        ot = enc_round(1)
        dk[48] = _mul_inv(ot[0])
        dk[49] = _add_inv(ot[1])
        dk[50] = _add_inv(ot[2])
        dk[51] = _mul_inv(ot[3])
        return dk

    # ------------------------------------------------------------------
    # the cipher, vectorised over a block range
    # ------------------------------------------------------------------
    def _cipher(self, src: np.ndarray, dst: np.ndarray, key: np.ndarray,
                lo: int, hi: int) -> None:
        if hi <= lo:
            return
        blocks = src[lo:hi].astype(np.uint16)
        x1 = blocks[:, 0] << 8 | blocks[:, 1]
        x2 = blocks[:, 2] << 8 | blocks[:, 3]
        x3 = blocks[:, 4] << 8 | blocks[:, 5]
        x4 = blocks[:, 6] << 8 | blocks[:, 7]
        k = 0
        for _ in range(self.ROUNDS):
            x1 = _mul(x1, key[k])
            x2 = (x2 + key[k + 1]) & 0xFFFF
            x3 = (x3 + key[k + 2]) & 0xFFFF
            x4 = _mul(x4, key[k + 3])
            t2 = x1 ^ x3
            t2 = _mul(t2, key[k + 4])
            t1 = (t2 + (x2 ^ x4)) & 0xFFFF
            t1 = _mul(t1, key[k + 5])
            t2 = (t1 + t2) & 0xFFFF
            x1 ^= t1
            x4 ^= t2
            t2 ^= x2
            x2 = x3 ^ t1
            x3 = t2
            k += 6
        y1 = _mul(x1, key[k])
        y2 = (x3 + key[k + 1]) & 0xFFFF
        y3 = (x2 + key[k + 2]) & 0xFFFF
        y4 = _mul(x4, key[k + 3])
        out = np.empty_like(blocks)
        out[:, 0] = y1 >> 8
        out[:, 1] = y1 & 0xFF
        out[:, 2] = y2 >> 8
        out[:, 3] = y2 & 0xFF
        out[:, 4] = y3 >> 8
        out[:, 5] = y3 & 0xFF
        out[:, 6] = y4 >> 8
        out[:, 7] = y4 & 0xFF
        dst[lo:hi] = out.astype(np.uint8)

    # ------------------------------------------------------------------
    def execute(self) -> bool:
        self.do()
        return self.validate()

    def do(self) -> None:
        self.encrypt_blocks(0, self.nblocks)
        self.round_done()
        self.decrypt_blocks(0, self.nblocks)
        self.round_done()

    def encrypt_blocks(self, lo: int, hi: int) -> None:
        self._cipher(self.plain, self.crypt, self.ekey, lo, hi)

    def decrypt_blocks(self, lo: int, hi: int) -> None:
        self._cipher(self.crypt, self.decrypted, self.dkey, lo, hi)

    def round_done(self) -> None:
        """Phase bookkeeping (safe point join point)."""
        self.blocks_done += self.nblocks

    def validate(self) -> bool:
        return bool(np.array_equal(self.plain, self.decrypted))
