"""Evolutionary-computation mini-framework (paper reference [20]).

The paper's case studies include "a Java framework for evolutionary
computation" parallelised with pluggable parallelisation (Pinho, Rocha &
Sobral, PDP 2010).  This is its Python stand-in: a (mu, lambda)-style
genetic algorithm with tournament selection, blend crossover and Gaussian
mutation over real vectors.

Parallel structure: fitness evaluation is the expensive, embarrassingly
parallel phase (work-shared over individuals; the fitness vector
partitions block-wise and is re-assembled after evaluation); breeding is
cheap and *deterministically replicated* — it draws from an RNG keyed by
``(seed, generation)``, so every member breeds the identical next
population without communicating.  One generation = one safe point;
``population`` / ``fitness`` / ``generation`` are the SafeData.

Domain code only — plugs in :mod:`repro.apps.plugs.evo_plugs`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.util.rng import seeded_rng


# ---------------------------------------------------------------------------
# benchmark problems
# ---------------------------------------------------------------------------
class Sphere:
    """f(x) = sum(x^2); global minimum 0 at the origin."""

    def __init__(self, dim: int = 8) -> None:
        self.dim = dim
        self.bounds = (-5.0, 5.0)

    def __call__(self, xs: np.ndarray) -> np.ndarray:
        return np.einsum("ij,ij->i", xs, xs)


class Rastrigin:
    """Highly multimodal standard benchmark; global minimum 0 at origin."""

    def __init__(self, dim: int = 8) -> None:
        self.dim = dim
        self.bounds = (-5.12, 5.12)

    def __call__(self, xs: np.ndarray) -> np.ndarray:
        return (10.0 * xs.shape[1]
                + (xs ** 2 - 10.0 * np.cos(2.0 * np.pi * xs)).sum(axis=1))


class OneMax:
    """Continuous relaxation of OneMax: maximise ones == minimise -sum."""

    def __init__(self, dim: int = 16) -> None:
        self.dim = dim
        self.bounds = (0.0, 1.0)

    def __call__(self, xs: np.ndarray) -> np.ndarray:
        return -np.round(xs).sum(axis=1)


# ---------------------------------------------------------------------------
# the GA
# ---------------------------------------------------------------------------
class EvolutionaryOptimizer:
    """Minimise ``problem(x)`` with a real-coded GA."""

    def __init__(self, problem: Callable[[np.ndarray], np.ndarray],
                 pop_size: int = 64, generations: int = 30,
                 tournament: int = 3, mutation_sigma: float = 0.1,
                 elite: int = 2, seed: int = 2024) -> None:
        if pop_size < 4:
            raise ValueError("population too small")
        if elite >= pop_size:
            raise ValueError("elite must be smaller than the population")
        self.problem = problem
        self.pop_size = pop_size
        self.generations = generations
        self.tournament = tournament
        self.mutation_sigma = mutation_sigma
        self.elite = elite
        self.seed = seed
        lo, hi = problem.bounds
        self.population = seeded_rng(seed).uniform(
            lo, hi, (pop_size, problem.dim))
        self.fitness = np.full(pop_size, np.inf)
        self.generation = 0

    # ------------------------------------------------------------------
    def execute(self) -> float:
        self.run()
        return self.best_fitness()

    def run(self) -> None:
        for _ in range(self.generations):
            self.step()
            self.end_generation()

    def step(self) -> None:
        """One generation (ignorable during replay)."""
        self.evaluate(0, self.pop_size)
        self.collect_fitness()
        self.breed()

    def evaluate(self, lo: int, hi: int) -> None:
        """Fitness of individuals ``lo .. hi-1`` (work-shared loop)."""
        self.fitness[lo:hi] = self.problem(self.population[lo:hi])

    def collect_fitness(self) -> None:
        """Join point: full fitness vector needed from here on."""

    def breed(self) -> None:
        """Produce the next population.

        Deterministic given ``(seed, generation)``: replicated members
        all compute the same offspring with zero communication.
        """
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed,
                                   spawn_key=(self.generation + 1,)))
        pop, fit = self.population, self.fitness
        n, dim = pop.shape
        order = np.argsort(fit, kind="stable")
        new = np.empty_like(pop)
        new[:self.elite] = pop[order[:self.elite]]  # elitism
        # tournament selection for the rest
        k = n - self.elite
        cand = rng.integers(0, n, (2, k, self.tournament))
        parents_a = cand[0][np.arange(k),
                            np.argmin(fit[cand[0]], axis=1)]
        parents_b = cand[1][np.arange(k),
                            np.argmin(fit[cand[1]], axis=1)]
        alpha = rng.random((k, 1))
        children = alpha * pop[parents_a] + (1 - alpha) * pop[parents_b]
        children += rng.normal(0.0, self.mutation_sigma, (k, dim))
        lo, hi = self.problem.bounds
        np.clip(children, lo, hi, out=children)
        new[self.elite:] = children
        self.population = new

    def end_generation(self) -> None:
        self.generation += 1

    # ------------------------------------------------------------------
    def best_fitness(self) -> float:
        return float(self.fitness.min())

    def best_individual(self) -> np.ndarray:
        return self.population[int(np.argmin(self.fitness))].copy()
