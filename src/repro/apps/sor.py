"""JGF SOR: red-black successive over-relaxation (five-point stencil).

The paper's evaluation benchmark: "a typical scientific application,
where a five-point stencil is successively applied to a matrix".  This is
pure domain code — no threads, ranks, checkpoints or adaptation — exactly
as the pluggable-parallelisation discipline demands.  The matching plug
modules live in :mod:`repro.apps.plugs.sor_plugs`.

Red-black ordering is used (as in the JGF parallel versions): within one
half-sweep every updated point depends only on points of the other
colour, so the update is order-independent and the sequential, threaded
and distributed executions produce *bit-identical* matrices — the
property the metamorphic tests rely on.

Method roles (what the plug modules attach to):

``execute``      entry point; scatter/gather of ``G`` hang here.
``run``          the iteration driver — the parallel region.
``sweep``        one red-black iteration — declared *ignorable* (its whole
                 effect lives in ``G``, which is SafeData).
``relax``        one colour half-sweep over a row range — the work-shared
                 loop (first two args are the row bounds).
``end_iteration``the per-iteration bookkeeping — the safe point.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import seeded_rng


class SOR:
    """Red-black SOR over an ``n`` x ``n`` grid."""

    def __init__(self, n: int = 100, iterations: int = 100,
                 omega: float = 1.25, seed: int = 17) -> None:
        if n < 3:
            raise ValueError("grid must be at least 3x3")
        self.n = n
        self.iterations = iterations
        self.omega = omega
        self.G = seeded_rng(seed).random((n, n)) * 1e-6
        self.iterations_done = 0

    # ------------------------------------------------------------------
    def execute(self) -> float:
        """Run the full benchmark and return the result checksum."""
        self.run()
        return self.checksum()

    def run(self) -> None:
        """Iteration driver (the parallel region when plugged).

        The loop trip count is fixed (not resumed from ``iterations_done``)
        on purpose: restart and adaptation replay the driver from the top,
        skipping the ignorable ``sweep`` until the recorded safe point is
        reached, so the control flow must be state-independent.
        """
        for _ in range(self.iterations):
            self.sweep()
            self.end_iteration()

    def sweep(self) -> None:
        """One full red-black iteration (two half-sweeps)."""
        self.relax(1, self.n - 1, 0)  # red points
        self.relax(1, self.n - 1, 1)  # black points

    def relax(self, lo: int, hi: int, parity: int) -> None:
        """Half-sweep: update rows of ``parity`` colour in ``[lo, hi)``.

        Vectorised over whole rows; the five-point update for row ``i``
        reads rows ``i-1`` and ``i+1``, which is why the distributed plug
        declares a halo of one row.
        """
        lo = max(lo, 1)
        hi = min(hi, self.n - 1)
        start = lo + ((parity - lo) % 2)
        if start >= hi:
            return
        G = self.G
        w = self.omega
        r = np.arange(start, hi, 2)
        G[r, 1:-1] = ((1.0 - w) * G[r, 1:-1]
                      + w * 0.25 * (G[r - 1, 1:-1] + G[r + 1, 1:-1]
                                    + G[r, :-2] + G[r, 2:]))

    def end_iteration(self) -> None:
        """Per-iteration bookkeeping (the safe point join point)."""
        self.iterations_done += 1

    # ------------------------------------------------------------------
    def checksum(self) -> float:
        """JGF-style validation value: mean absolute grid value."""
        return float(np.abs(self.G).sum() / (self.n * self.n))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"SOR(n={self.n}, iterations={self.iterations}, "
                f"done={self.iterations_done})")
