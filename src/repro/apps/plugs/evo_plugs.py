"""Plug modules for the evolutionary-computation framework (ref [20]).

Fitness evaluation is work-shared; the fitness vector partitions
block-wise and is re-assembled at ``collect_fitness``; breeding is
deterministic replicated arithmetic (RNG keyed by generation), single-
threaded inside a team.  One generation = one safe point; the whole GA
state is three SafeData fields.
"""

from __future__ import annotations

from repro.core import (
    AllGatherAfter,
    BarrierAfter,
    BarrierBefore,
    ForMethod,
    IgnorableMethod,
    ParallelMethod,
    Partitioned,
    PlugSet,
    Replicate,
    SafeData,
    SafePointAfter,
    SingleMethod,
)
from repro.dsm.partition import BlockLayout
from repro.smp.sched import Schedule

EVO_SHARED = PlugSet(
    ParallelMethod("run"),
    ForMethod("evaluate", schedule=Schedule.DYNAMIC, chunk=4),
    BarrierBefore("collect_fitness"),
    SingleMethod("breed"),
    BarrierAfter("breed"),
    SingleMethod("end_generation"),
    name="evo-shared",
)

EVO_DIST = PlugSet(
    Replicate(),
    Partitioned("fitness", BlockLayout(axis=0), whole_at_safepoints=True),
    ForMethod("evaluate", align="fitness"),
    AllGatherAfter("evaluate", "fitness"),
    name="evo-dist",
)

EVO_CKPT = PlugSet(
    SafeData("population", "fitness", "generation"),
    SafePointAfter("end_generation"),
    IgnorableMethod("step"),
    name="evo-ckpt",
)
