"""Plug modules for the JGF Crypt (IDEA) benchmark.

Embarrassingly parallel over 8-byte blocks.  The three byte arrays
partition block-wise along the byte axis; because each cipher block is 8
bytes, the work-shared loop ranges over *block* indices while the layout
ranges over *bytes* — the ``align`` is therefore left to plain block
splitting of the block-index range, and each phase's output array is
re-assembled afterwards.
"""

from __future__ import annotations

from repro.core import (
    ForMethod,
    GatherAfter,
    IgnorableMethod,
    ParallelMethod,
    PlugSet,
    Partitioned,
    Replicate,
    SafeData,
    SafePointAfter,
    SingleMethod,
)
from repro.dsm.partition import BlockLayout
from repro.smp.sched import Schedule

CRYPT_SHARED = PlugSet(
    ParallelMethod("do"),
    ForMethod("encrypt_blocks", schedule=Schedule.STATIC),
    ForMethod("decrypt_blocks", schedule=Schedule.STATIC),
    SingleMethod("round_done"),
    name="crypt-shared",
)

# arrays are (nblocks, 8): BlockLayout over axis 0 never splits a cipher
# block, and the loops align with the partitioned output of each phase.
CRYPT_DIST = PlugSet(
    Replicate(),
    Partitioned("crypt", BlockLayout(axis=0)),
    Partitioned("decrypted", BlockLayout(axis=0)),
    ForMethod("encrypt_blocks", align="crypt"),
    ForMethod("decrypt_blocks", align="decrypted"),
    GatherAfter("encrypt_blocks", "crypt"),
    GatherAfter("decrypt_blocks", "decrypted"),
    name="crypt-dist",
)

CRYPT_CKPT = PlugSet(
    SafeData("crypt", "decrypted", "blocks_done"),
    SafePointAfter("round_done"),
    IgnorableMethod("encrypt_blocks"),
    IgnorableMethod("decrypt_blocks"),
    name="crypt-ckpt",
)
