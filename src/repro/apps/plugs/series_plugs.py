"""Plug modules for the JGF Series benchmark — the paper's Figure 1.

The distributed set is a line-by-line transcription of the figure:

    // Partitioned<TestArray, BLOCK>
    // ScatterBefore<Do(), TestArray>
    // GatherAfter<Do(), TestArray>

and the alternative shared-memory parallelisation the paper sketches in
Section III.D: "a shared memory parallelisation could be implemented by
declaring the Do method as parallel (ParallelMethod<Do()>) and by using
the for construct to schedule calls to the TrapezoidIntegrate method
among threads in the team."
"""

from __future__ import annotations

from repro.core import (
    ForMethod,
    GatherAfter,
    IgnorableMethod,
    ParallelMethod,
    Partitioned,
    PlugSet,
    Replicate,
    SafeData,
    SafePointAfter,
    ScatterBefore,
    SingleMethod,
)
from repro.dsm.partition import BlockLayout
from repro.smp.sched import Schedule

SERIES_SHARED = PlugSet(
    ParallelMethod("do"),
    SingleMethod("compute_a0"),
    ForMethod("compute_terms", schedule=Schedule.DYNAMIC, chunk=4),
    SingleMethod("finish"),
    name="series-shared",
)

SERIES_DIST = PlugSet(
    Replicate(),
    Partitioned("TestArray", BlockLayout(axis=1)),
    ScatterBefore("do", "TestArray"),
    GatherAfter("do", "TestArray"),
    ForMethod("compute_terms", align="TestArray"),
    name="series-dist",
)

SERIES_CKPT = PlugSet(
    SafeData("TestArray", "terms_done"),
    SafePointAfter("finish"),
    IgnorableMethod("compute_terms"),
    name="series-ckpt",
)
