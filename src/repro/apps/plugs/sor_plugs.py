"""Plug modules for the JGF SOR benchmark.

Three independent concerns, composable with ``+`` exactly as the paper
prescribes (Section III.A: sequential / shared / distributed versions of
one code base; Section IV.A: checkpointing as a further pluggable
concern):

* ``SOR_SHARED``  — OpenMP-style: ``run`` is a parallel method, ``relax``
  is work-shared over rows with a barrier separating the two colour
  half-sweeps.
* ``SOR_DIST``    — aggregate-style: ``G`` is block-partitioned by rows
  with a one-row halo; partitions are updated before ``run`` and
  collected after it (the paper's Figure 1 Scatter/Gather points); ghost
  rows are refreshed before each half-sweep.
* ``SOR_CKPT``    — checkpointing: ``G`` and the iteration cursor are
  SafeData, the end of each iteration is a safe point, and ``sweep`` is
  ignorable during replay (its entire effect is captured by ``G``).

The paper's Section V claim that "specifying the safe points, ignorable
methods and safe data fields introduces a very small programming
overhead" is literally visible here: ``SOR_CKPT`` is three declarations.
"""

from __future__ import annotations

from repro.core import (
    BarrierAfter,
    ForMethod,
    GatherAfter,
    HaloExchangeBefore,
    IgnorableMethod,
    ParallelMethod,
    Partitioned,
    PlugSet,
    Replicate,
    SafeData,
    SafePointAfter,
    ScatterBefore,
    SingleMethod,
)
from repro.dsm.partition import BlockLayout
from repro.smp.sched import Schedule

SOR_SHARED = PlugSet(
    ParallelMethod("run"),
    ForMethod("relax", schedule=Schedule.STATIC),
    BarrierAfter("relax"),
    # the iteration cursor is shared state: one team increment per pass
    SingleMethod("end_iteration"),
    name="sor-shared",
)

SOR_DIST = PlugSet(
    Replicate(),
    Partitioned("G", BlockLayout(axis=0, halo=1)),
    ScatterBefore("run", "G"),
    GatherAfter("run", "G"),
    ForMethod("relax", align="G"),
    HaloExchangeBefore("relax", "G"),
    name="sor-dist",
)

# Hybrid is NOT "dist + shared": both sets carry a ForMethod for `relax`,
# and work sharing must be declared exactly once (the context composes the
# rank and thread dimensions itself).
SOR_HYBRID = PlugSet(
    Replicate(),
    Partitioned("G", BlockLayout(axis=0, halo=1)),
    ScatterBefore("run", "G"),
    GatherAfter("run", "G"),
    ParallelMethod("run"),
    ForMethod("relax", align="G", schedule=Schedule.STATIC),
    HaloExchangeBefore("relax", "G"),
    BarrierAfter("relax"),
    SingleMethod("end_iteration"),
    name="sor-hybrid",
)

SOR_CKPT = PlugSet(
    SafeData("G", "iterations_done"),
    SafePointAfter("end_iteration"),
    IgnorableMethod("sweep"),
    name="sor-ckpt",
)


def sor_plugs(shared: bool = False, dist: bool = False,
              ckpt: bool = True) -> PlugSet:
    """Compose the SOR plug sets for a given deployment."""
    if shared and dist:
        out = SOR_HYBRID
    elif dist:
        out = SOR_DIST
    elif shared:
        out = SOR_SHARED
    else:
        out = PlugSet(name="sor")
    if ckpt:
        out = out + SOR_CKPT
    return out


#: the full adaptive deployment: weave once, run in ANY mode.
SOR_ADAPTIVE = SOR_HYBRID + SOR_CKPT
