"""Plug modules for the LUFact kernel.

Rows partition block-wise; each elimination phase updates only the
member's owned rows and the matrix is re-assembled afterwards
(AllGather), so the next step's pivot decision is replicated arithmetic
on a whole matrix.  In a team, the pivot step is single-threaded and
fenced by barriers on both sides (eliminations read the scaled column,
the next pivot reads all eliminations).
"""

from __future__ import annotations

from repro.core import (
    AllGatherAfter,
    BarrierAfter,
    BarrierBefore,
    ForMethod,
    IgnorableMethod,
    ParallelMethod,
    Partitioned,
    PlugSet,
    Replicate,
    SafeData,
    SafePointAfter,
    SingleMethod,
)
from repro.dsm.partition import BlockLayout

LUFACT_SHARED = PlugSet(
    ParallelMethod("run"),
    BarrierBefore("pivot_and_scale"),
    SingleMethod("pivot_and_scale"),
    BarrierAfter("pivot_and_scale"),
    ForMethod("eliminate_rows"),
    SingleMethod("end_step"),
    name="lufact-shared",
)

LUFACT_DIST = PlugSet(
    Replicate(),
    Partitioned("A", BlockLayout(axis=0), whole_at_safepoints=True),
    ForMethod("eliminate_rows", align="A"),
    AllGatherAfter("eliminate_rows", "A"),
    name="lufact-dist",
)

LUFACT_CKPT = PlugSet(
    SafeData("A", "piv", "step_k"),
    SafePointAfter("end_step"),
    IgnorableMethod("factor_step"),
    name="lufact-ckpt",
)
