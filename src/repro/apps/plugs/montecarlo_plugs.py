"""Plug modules for the MonteCarlo pricing kernel.

Paths are independent (per-path RNG streams), so the distribution over
members is free: the per-path returns vector partitions block-wise and is
re-assembled once after simulation; the shared-memory version uses a
dynamic schedule since path costs are uniform but cheap (demonstrating a
second schedule in the suite).
"""

from __future__ import annotations

from repro.core import (
    AllGatherAfter,
    BarrierAfter,
    ForMethod,
    IgnorableMethod,
    ParallelMethod,
    Partitioned,
    PlugSet,
    Replicate,
    SafeData,
    SafePointAfter,
    SingleMethod,
)
from repro.dsm.partition import BlockLayout
from repro.smp.sched import Schedule

MC_SHARED = PlugSet(
    ParallelMethod("run"),
    ForMethod("simulate_paths", schedule=Schedule.DYNAMIC, chunk=8),
    BarrierAfter("simulate_paths"),
    SingleMethod("batch_done"),
    name="mc-shared",
)

MC_DIST = PlugSet(
    Replicate(),
    Partitioned("returns", BlockLayout(axis=0), whole_at_safepoints=True),
    ForMethod("simulate_paths", align="returns"),
    AllGatherAfter("simulate_paths", "returns"),
    name="mc-dist",
)

MC_CKPT = PlugSet(
    SafeData("returns", "paths_done"),
    SafePointAfter("batch_done"),
    IgnorableMethod("simulate_paths"),
    name="mc-ckpt",
)
