"""Plug modules for the JGF SparseMatMult benchmark.

Rows of ``y`` partition block-wise; because the damped product feeds back
as the next input vector, every member needs the whole of ``y`` after the
multiply — the ``AllGatherAfter`` pattern.  The swap itself is replicated
arithmetic (identical on every member) and a single-thread operation
inside a team.
"""

from __future__ import annotations

from repro.core import (
    AllGatherAfter,
    BarrierAfter,
    ForMethod,
    IgnorableMethod,
    ParallelMethod,
    Partitioned,
    PlugSet,
    Replicate,
    SafeData,
    SafePointAfter,
    SingleMethod,
)
from repro.dsm.partition import BlockLayout

SPARSE_SHARED = PlugSet(
    ParallelMethod("run"),
    ForMethod("multiply_rows"),
    BarrierAfter("multiply_rows"),
    SingleMethod("swap"),
    BarrierAfter("swap"),
    SingleMethod("end_iteration"),
    name="sparse-shared",
)

SPARSE_DIST = PlugSet(
    Replicate(),
    Partitioned("y", BlockLayout(axis=0), whole_at_safepoints=True),
    ForMethod("multiply_rows", align="y"),
    AllGatherAfter("multiply_rows", "y"),
    name="sparse-dist",
)

SPARSE_CKPT = PlugSet(
    SafeData("x", "y", "iterations_done"),
    SafePointAfter("end_iteration"),
    IgnorableMethod("step"),
    name="sparse-ckpt",
)
