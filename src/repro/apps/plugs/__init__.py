"""Parallelisation and checkpointing plug modules, one per workload.

These are the paper's "separate module (e.g., file)" declarations — the
red/italic comments of its Figure 1, expressed as PlugSets.  Domain code
in :mod:`repro.apps` never imports this package.
"""

from repro.apps.plugs.sor_plugs import (
    SOR_ADAPTIVE,
    SOR_CKPT,
    SOR_DIST,
    SOR_HYBRID,
    SOR_SHARED,
    sor_plugs,
)

__all__ = [
    "SOR_ADAPTIVE",
    "SOR_CKPT",
    "SOR_DIST",
    "SOR_HYBRID",
    "SOR_SHARED",
    "sor_plugs",
]
