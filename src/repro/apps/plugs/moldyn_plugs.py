"""Plug modules for the MolDyn (Lennard-Jones MD) kernel.

Positions/velocities are replicated; the O(N^2) force phase is
work-shared over particles with the per-particle force rows partitioned
block-wise and re-assembled at the force-phase join (``finish_forces``).
Integration half-kicks are replicated arithmetic on every member (and
single-thread inside a team).  One time step = one safe point.
"""

from __future__ import annotations

from repro.core import (
    AllGatherAfter,
    BarrierAfter,
    ForMethod,
    IgnorableMethod,
    ParallelMethod,
    Partitioned,
    PlugSet,
    Replicate,
    Replicated,
    SafeData,
    SafePointAfter,
    SingleMethod,
)
from repro.dsm.partition import BlockLayout

MOLDYN_SHARED = PlugSet(
    ParallelMethod("run"),
    SingleMethod("half_kick_drift"),
    BarrierAfter("half_kick_drift"),
    SingleMethod("clear_forces"),
    BarrierAfter("clear_forces"),
    ForMethod("compute_forces"),
    BarrierAfter("compute_forces"),
    SingleMethod("half_kick"),
    BarrierAfter("half_kick"),
    SingleMethod("end_step"),
    name="moldyn-shared",
)

MOLDYN_DIST = PlugSet(
    Replicate(),
    Replicated("positions"),
    Replicated("velocities"),
    Partitioned("forces", BlockLayout(axis=0), whole_at_safepoints=True),
    ForMethod("compute_forces", align="forces"),
    AllGatherAfter("compute_forces", "forces"),
    name="moldyn-dist",
)

MOLDYN_CKPT = PlugSet(
    SafeData("positions", "velocities", "forces", "steps_done"),
    SafePointAfter("end_step"),
    IgnorableMethod("step"),
    name="moldyn-ckpt",
)
