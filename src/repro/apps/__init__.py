"""Workloads: Python ports of the JGF kernels the paper's line of work
uses, plus the evolutionary-computation mini-framework of its ref [20].

Every app follows the pluggable-parallelisation discipline:

* the module here contains **only domain-specific code** — plain classes
  that run sequentially and know nothing about threads, ranks,
  checkpoints or adaptation;
* the corresponding module in :mod:`repro.apps.plugs` contains the
  parallelisation / checkpointing declarations (the paper's separate
  "file" of templates, cf. its Figure 1).

Kernels: SOR (the paper's evaluation benchmark), Series (its Figure 1
example), Crypt, SparseMatMult, MonteCarlo, MolDyn, and the evolutionary
GA framework.
"""

from repro.apps.crypt import Crypt
from repro.apps.evo import EvolutionaryOptimizer, OneMax, Rastrigin, Sphere
from repro.apps.lufact import LUFact
from repro.apps.moldyn import MolDyn
from repro.apps.montecarlo import MonteCarloPricer
from repro.apps.series import Series
from repro.apps.sor import SOR
from repro.apps.sparse import SparseMatMult

__all__ = [
    "Crypt",
    "EvolutionaryOptimizer",
    "LUFact",
    "MolDyn",
    "MonteCarloPricer",
    "OneMax",
    "Rastrigin",
    "SOR",
    "Series",
    "SparseMatMult",
    "Sphere",
]
