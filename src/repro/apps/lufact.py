"""JGF LUFact: dense LU factorisation with partial pivoting.

Gaussian elimination in place: at step ``k`` the pivot row is selected
and swapped (a replicated, deterministic decision), the pivot column is
scaled, and rows ``k+1..n`` are eliminated — the eliminated-rows loop is
the work-shared phase.  Unlike the stencil kernels, every step *reads*
the pivot row produced by the previous step, so the distributed plug
re-assembles the matrix after each elimination phase (AllGather) — a
different communication shape from SOR's halo exchange, which is why the
kernel earns its place in the suite.

Domain code only — plugs in :mod:`repro.apps.plugs.lufact_plugs`.
Validation: ``P A0 == L U`` to numerical tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import seeded_rng


class LUFact:
    """In-place LU factorisation of a random well-conditioned matrix."""

    def __init__(self, n: int = 64, seed: int = 42) -> None:
        if n < 2:
            raise ValueError("matrix must be at least 2x2")
        self.n = n
        rng = seeded_rng(seed)
        # plain random matrix: invertible w.h.p., and partial pivoting
        # actually has pivoting to do (a dominant diagonal would make the
        # pivot search trivially pick the diagonal every step)
        self.A = rng.random((n, n))
        self.A0 = self.A.copy()  # kept for validation
        self.piv = np.arange(n)
        self.step_k = 0

    # ------------------------------------------------------------------
    def execute(self) -> float:
        self.run()
        return self.checksum()

    def validate_after_run(self) -> bool:
        """Entry point that factorises and then checks P A0 == L U."""
        self.run()
        return self.validate()

    def run(self) -> None:
        for k in range(self.n - 1):
            self.factor_step(k)
            self.end_step()

    def factor_step(self, k: int) -> None:
        """One elimination step (ignorable during replay)."""
        self.pivot_and_scale(k)
        self.eliminate_rows(k + 1, self.n, k)

    def pivot_and_scale(self, k: int) -> None:
        """Select/swap the pivot row and scale the pivot column.

        Deterministic given ``A`` — replicated members all take the same
        decision with no communication.
        """
        A = self.A
        p = k + int(np.argmax(np.abs(A[k:, k])))
        if p != k:
            A[[k, p], :] = A[[p, k], :]
            self.piv[[k, p]] = self.piv[[p, k]]
        A[k + 1:, k] /= A[k, k]

    def eliminate_rows(self, lo: int, hi: int, k: int) -> None:
        """Eliminate rows ``lo..hi-1`` against pivot row ``k``
        (the work-shared loop)."""
        if hi <= lo:
            return
        A = self.A
        A[lo:hi, k + 1:] -= np.outer(A[lo:hi, k], A[k, k + 1:])

    def end_step(self) -> None:
        self.step_k += 1

    # ------------------------------------------------------------------
    def checksum(self) -> float:
        return float(np.abs(self.A).sum() / (self.n * self.n))

    def validate(self, tol: float = 1e-9) -> bool:
        """Check P A0 == L U."""
        L = np.tril(self.A, -1) + np.eye(self.n)
        U = np.triu(self.A)
        return bool(np.allclose(self.A0[self.piv], L @ U, atol=tol))
