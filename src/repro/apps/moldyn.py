"""JGF MolDyn: Lennard-Jones molecular dynamics (velocity Verlet).

N particles on an FCC-initialised cube interacting through a truncated
Lennard-Jones potential, integrated with velocity Verlet — the paper's
line of work includes a pluggable-parallelisation MD framework (ref
[21]); this kernel is its JGF-scale stand-in.

Parallel structure (matching the JGF parallel versions): positions and
velocities are *replicated*; the O(N^2) force loop is work-shared over
particles; partial force arrays are summed across members after the
force phase (AllGather/Reduce pattern), after which every member
integrates identically.  One time step = one safe point; ``positions``
and ``velocities`` are the SafeData.

Domain code only — plugs in :mod:`repro.apps.plugs.moldyn_plugs`.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import seeded_rng


class MolDyn:
    """Lennard-Jones MD on ``n`` particles in a periodic cube."""

    def __init__(self, n: int = 64, steps: int = 20, density: float = 0.8,
                 dt: float = 0.002, seed: int = 5) -> None:
        if n < 8:
            raise ValueError("need at least 8 particles")
        self.n = n
        self.steps = steps
        self.dt = dt
        self.box = (n / density) ** (1.0 / 3.0)
        rng = seeded_rng(seed)
        # simple cubic lattice + jitter (deterministic)
        side = int(np.ceil(n ** (1.0 / 3.0)))
        grid = np.stack(np.meshgrid(*[np.arange(side)] * 3,
                                    indexing="ij"), axis=-1).reshape(-1, 3)
        self.positions = (grid[:n] + 0.5) * (self.box / side) \
            + rng.normal(0.0, 0.01, (n, 3))
        self.velocities = rng.normal(0.0, 1.0, (n, 3))
        self.velocities -= self.velocities.mean(axis=0)  # zero net momentum
        self.forces = np.zeros((n, 3))
        self.steps_done = 0

    # ------------------------------------------------------------------
    def execute(self) -> float:
        self.run()
        return self.kinetic_energy()

    def run(self) -> None:
        for _ in range(self.steps):
            self.step()
            self.end_step()

    def step(self) -> None:
        """One velocity-Verlet step (ignorable during replay)."""
        self.half_kick_drift()
        self.clear_forces()
        self.compute_forces(0, self.n)
        self.finish_forces()
        self.half_kick()

    def half_kick_drift(self) -> None:
        self.velocities += 0.5 * self.dt * self.forces
        self.positions += self.dt * self.velocities
        self.positions %= self.box  # periodic wrap

    def clear_forces(self) -> None:
        self.forces[...] = 0.0

    def compute_forces(self, lo: int, hi: int) -> None:
        """LJ forces for particles ``lo .. hi-1`` (work-shared loop).

        Computes the *full* force on each owned particle (i against all
        j != i), so per-particle rows of ``forces`` are disjoint across
        members — no reduction races, a clean AllGather suffices.
        """
        pos = self.positions
        box = self.box
        for i in range(lo, hi):
            d = pos[i] - pos  # (n, 3)
            d -= box * np.round(d / box)  # minimum image
            r2 = np.einsum("ij,ij->i", d, d)
            r2[i] = np.inf  # no self-interaction
            np.clip(r2, 0.64, None, out=r2)  # avoid overlap blow-up
            inv2 = 1.0 / r2
            inv6 = inv2 ** 3
            fmag = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0)
            self.forces[i] = (fmag[:, None] * d).sum(axis=0)

    def finish_forces(self) -> None:
        """Force-phase join (barrier / allgather attach point)."""

    def half_kick(self) -> None:
        self.velocities += 0.5 * self.dt * self.forces

    def end_step(self) -> None:
        self.steps_done += 1

    # ------------------------------------------------------------------
    def kinetic_energy(self) -> float:
        return float(0.5 * np.einsum("ij,ij->", self.velocities,
                                     self.velocities))
