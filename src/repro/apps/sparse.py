"""JGF SparseMatMult: repeated sparse matrix-vector products.

``y += A @ x`` repeated ``iterations`` times over a random sparse matrix
in CSR form.  The work-shared loop ranges over *rows*; ``y`` partitions
block-wise by row, ``x`` is replicated (every rank reads all of it), and
after each product the updated ``y`` becomes the next ``x`` — which in
the distributed setting requires an allgather, expressed in the plugs as
gather+scatter around the swap (a single safe point per iteration).

Domain code only — plugs in :mod:`repro.apps.plugs.sparse_plugs`.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import seeded_rng


class SparseMatMult:
    """CSR sparse matrix-vector kernel."""

    def __init__(self, n: int = 500, nnz_per_row: int = 5,
                 iterations: int = 20, seed: int = 7) -> None:
        if n < 2 or nnz_per_row < 1:
            raise ValueError("bad sparse matrix shape")
        rng = seeded_rng(seed)
        self.n = n
        self.iterations = iterations
        # CSR with a fixed number of nonzeros per row (JGF style)
        cols = np.empty(n * nnz_per_row, dtype=np.int64)
        for i in range(n):
            cols[i * nnz_per_row:(i + 1) * nnz_per_row] = rng.choice(
                n, size=nnz_per_row, replace=False)
        self.colidx = cols
        self.rowptr = np.arange(n + 1) * nnz_per_row
        self.values = rng.random(n * nnz_per_row) * (2.0 / nnz_per_row) - \
            (1.0 / nnz_per_row)
        self.x = rng.random(n)
        self.y = np.zeros(n)
        self.iterations_done = 0

    # ------------------------------------------------------------------
    def execute(self) -> float:
        self.run()
        return self.checksum()

    def run(self) -> None:
        for _ in range(self.iterations):
            self.step()
            self.end_iteration()

    def step(self) -> None:
        """One product + swap (ignorable during replay)."""
        self.multiply_rows(0, self.n)
        self.swap()

    def multiply_rows(self, lo: int, hi: int) -> None:
        """``y[lo:hi] = A[lo:hi] @ x`` (the work-shared loop)."""
        for i in range(lo, hi):
            s, e = self.rowptr[i], self.rowptr[i + 1]
            self.y[i] = np.dot(self.values[s:e], self.x[self.colidx[s:e]])

    def swap(self) -> None:
        """Feed the product back as the next input, with damping."""
        self.x = 0.5 * self.x + 0.5 * self.y

    def end_iteration(self) -> None:
        self.iterations_done += 1

    # ------------------------------------------------------------------
    def checksum(self) -> float:
        return float(np.abs(self.y).sum())
