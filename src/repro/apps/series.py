"""JGF Series: Fourier coefficients by trapezoid integration.

The paper's Figure 1 illustrates pluggable parallelisation on exactly
this benchmark: ``TestArray`` holds the first ``n`` Fourier coefficient
pairs of ``f(x) = (x+1)^x`` on ``[0, 2]``, each computed by trapezoid
integration; the distributed plug partitions ``TestArray`` block-wise,
scatters before ``do`` and gathers after it.

Domain code only — plugs in :mod:`repro.apps.plugs.series_plugs`.
"""

from __future__ import annotations

import numpy as np


class Series:
    """First ``n`` Fourier coefficient pairs of ``(x+1)^x`` on [0, 2]."""

    def __init__(self, n: int = 100, integration_points: int = 1000) -> None:
        if n < 2:
            raise ValueError("need at least 2 coefficient pairs")
        self.n = n
        self.m = integration_points
        #: row 0 = a_j coefficients, row 1 = b_j; column j = term j.
        self.TestArray = np.zeros((2, n))
        self.terms_done = 0

    # ------------------------------------------------------------------
    def execute(self) -> tuple[float, float, float]:
        self.do()
        return self.first_coefficients()

    def do(self) -> None:
        """Compute all coefficient pairs (the Figure 1 ``Do()`` method)."""
        self.compute_a0()
        self.compute_terms(1, self.n)
        self.finish()

    def compute_a0(self) -> None:
        """The j=0 term: plain average of f (computed by everyone —
        deterministic and cheap, so replication is harmless)."""
        x = np.linspace(0.0, 2.0, self.m + 1)
        fx = self._f(x)
        self.TestArray[0, 0] = np.trapezoid(fx, x) / 2.0
        self.TestArray[1, 0] = 0.0

    def compute_terms(self, lo: int, hi: int) -> None:
        """Coefficient pairs ``lo .. hi-1`` (the work-shared loop)."""
        x = np.linspace(0.0, 2.0, self.m + 1)
        fx = self._f(x)
        for j in range(lo, hi):
            wx = np.pi * j * x
            self.TestArray[0, j] = self._trapezoid(fx * np.cos(wx), x)
            self.TestArray[1, j] = self._trapezoid(fx * np.sin(wx), x)

    def finish(self) -> None:
        """Per-batch bookkeeping (safe point join point)."""
        self.terms_done = self.n

    # ------------------------------------------------------------------
    @staticmethod
    def _f(x: np.ndarray) -> np.ndarray:
        return np.power(x + 1.0, x)

    @staticmethod
    def _trapezoid(y: np.ndarray, x: np.ndarray) -> float:
        return float(np.trapezoid(y, x))

    def first_coefficients(self) -> tuple[float, float, float]:
        """JGF-style validation triple: (a0, a1, b1)."""
        return (float(self.TestArray[0, 0]),
                float(self.TestArray[0, 1]),
                float(self.TestArray[1, 1]))
