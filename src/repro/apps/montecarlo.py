"""JGF MonteCarlo: option pricing by Monte-Carlo path simulation.

Simulates geometric-Brownian price paths and averages the resulting
expected returns — the JGF financial kernel.  Embarrassingly parallel
over paths.  Two design points matter for the reproduction:

* each path draws from its **own** RNG stream keyed by the path index
  (:func:`repro.util.rng.spawn_rngs` semantics), so the result is
  independent of how paths are distributed over threads/ranks — the mode
  equivalence tests rely on it;
* the per-path results vector partitions block-wise, and the final
  average is a ``ReduceResult`` over partial sums.

Domain code only — plugs in :mod:`repro.apps.plugs.montecarlo_plugs`.
"""

from __future__ import annotations

import numpy as np


class MonteCarloPricer:
    """Average expected return over ``npaths`` simulated price paths."""

    def __init__(self, npaths: int = 400, steps: int = 100,
                 s0: float = 100.0, sigma: float = 0.3, r: float = 0.05,
                 seed: int = 1234) -> None:
        if npaths < 1 or steps < 2:
            raise ValueError("need >= 1 path and >= 2 time steps")
        self.npaths = npaths
        self.steps = steps
        self.s0 = s0
        self.sigma = sigma
        self.r = r
        self.seed = seed
        self.dt = 1.0 / steps
        self.returns = np.zeros(npaths)
        self.paths_done = 0

    # ------------------------------------------------------------------
    def execute(self) -> float:
        self.run()
        return self.average_return()

    def run(self) -> None:
        self.simulate_paths(0, self.npaths)
        self.batch_done()

    def simulate_paths(self, lo: int, hi: int) -> None:
        """Simulate paths ``lo .. hi-1`` (the work-shared loop)."""
        seq = np.random.SeedSequence(self.seed)
        children = seq.spawn(self.npaths)  # stream per *path*, not per rank
        drift = (self.r - 0.5 * self.sigma ** 2) * self.dt
        vol = self.sigma * np.sqrt(self.dt)
        for p in range(lo, hi):
            rng = np.random.default_rng(children[p])
            increments = drift + vol * rng.standard_normal(self.steps)
            log_path = np.cumsum(increments)
            price = self.s0 * np.exp(log_path[-1])
            self.returns[p] = np.log(price / self.s0)

    def batch_done(self) -> None:
        self.paths_done += self.npaths

    def partial_sum(self, lo: int, hi: int) -> float:
        """Partial reduction over a path range (used by the dist plug)."""
        return float(self.returns[lo:hi].sum())

    # ------------------------------------------------------------------
    def average_return(self) -> float:
        return float(self.returns.sum() / self.npaths)
