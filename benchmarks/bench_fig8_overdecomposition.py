"""Figure 8 — the cost of adapting through over-decomposition.

Paper: running SOR with an over-decomposition factor ``of`` (processes
per processing element) on a 16-processor machine; of=16 (256 processes)
takes the execution from ~5 s to ~15 s, i.e. a ~3x blow-up — the
motivation for reshaping the parallelism instead of over-decomposing.
"""

from __future__ import annotations

from paper_report import FigureReport
from repro.baselines import run_overdecomposed_sor
from repro.vtime.machine import MachineModel

#: the paper's "16-processor machine".
MACHINE_16 = MachineModel(nodes=2, cores_per_node=8)
FACTORS = [1, 2, 4, 8, 16]
N = 512
ITERS = 20


def test_fig8_overdecomposition(benchmark, tmp_path):
    report = FigureReport(
        "Figure 8", "Over-decomposition on 16 processors "
        "(virtual seconds)",
        ["of", "processes", "time", "slowdown vs of=1"])

    def experiment():
        results = {}
        for of in FACTORS:
            res = run_overdecomposed_sor(of, MACHINE_16, n=N,
                                         iterations=ITERS)
            results[of] = res
        base = results[1].vtime
        for of in FACTORS:
            report.add(of, of * MACHINE_16.total_cores, results[of].vtime,
                       results[of].vtime / base)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report.emit(benchmark)

    times = [results[of].vtime for of in FACTORS]
    # results stay correct under over-decomposition
    checks = {results[of].checksum for of in FACTORS}
    assert len(checks) == 1
    # paper shape 1: monotone growth with the factor
    assert all(a < b for a, b in zip(times, times[1:]))
    # paper shape 2: of=16 lands near the paper's ~3x (broad band)
    slowdown = times[-1] / times[0]
    assert 2.0 <= slowdown <= 6.0, f"of=16 slowdown {slowdown:.2f}"
