"""Figure 8 — the cost of adapting through over-decomposition.

Paper: running SOR with an over-decomposition factor ``of`` (processes
per processing element) on a 16-processor machine; of=16 (256 processes)
takes the execution from ~5 s to ~15 s, i.e. a ~3x blow-up — the
motivation for reshaping the parallelism instead of over-decomposing.

The variant below (Figure 8b) swaps the simulated substrate for real
ones: the same woven SOR and MolDyn kernels on GIL-bound thread teams
versus the multiprocessing backend's process ranks with shared-memory
fields, measured in *wall* seconds — the many-core motivation (see
PAPERS.md) for having a substrate with true parallel speedup behind the
same backend seam.
"""

from __future__ import annotations

import time

from paper_report import FigureReport
from repro.apps.moldyn import MolDyn
from repro.apps.plugs.moldyn_plugs import MOLDYN_CKPT, MOLDYN_DIST
from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.baselines import run_overdecomposed_sor
from repro.core import ExecConfig, Runtime, plug
from repro.vtime.machine import MachineModel

#: the paper's "16-processor machine".
MACHINE_16 = MachineModel(nodes=2, cores_per_node=8)
FACTORS = [1, 2, 4, 8, 16]
N = 512
ITERS = 20


def test_fig8_overdecomposition(benchmark, tmp_path):
    report = FigureReport(
        "Figure 8", "Over-decomposition on 16 processors "
        "(virtual seconds)",
        ["of", "processes", "time", "slowdown vs of=1"])

    def experiment():
        results = {}
        for of in FACTORS:
            res = run_overdecomposed_sor(of, MACHINE_16, n=N,
                                         iterations=ITERS)
            results[of] = res
        base = results[1].vtime
        for of in FACTORS:
            report.add(of, of * MACHINE_16.total_cores, results[of].vtime,
                       results[of].vtime / base)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report.emit(benchmark)

    times = [results[of].vtime for of in FACTORS]
    # results stay correct under over-decomposition
    checks = {results[of].checksum for of in FACTORS}
    assert len(checks) == 1
    # paper shape 1: monotone growth with the factor
    assert all(a < b for a, b in zip(times, times[1:]))
    # paper shape 2: of=16 lands near the paper's ~3x (broad band)
    slowdown = times[-1] / times[0]
    assert 2.0 <= slowdown <= 6.0, f"of=16 slowdown {slowdown:.2f}"


# ---------------------------------------------------------------------------
# Figure 8b — real substrates: thread teams vs multiprocessing ranks
# ---------------------------------------------------------------------------
#: workloads sized so one cell runs in roughly a second on CI hardware.
WORKLOADS = {
    "sor": (SOR, SOR_ADAPTIVE, {"n": 256, "iterations": 40}),
    "moldyn": (MolDyn, MOLDYN_DIST + MOLDYN_CKPT, {"n": 64, "steps": 8}),
}
PES = [1, 2, 4]


def _wall_run(woven, kwargs, config, tmp_path, tag):
    rt = Runtime(machine=MACHINE_16, ckpt_dir=tmp_path / tag)
    t0 = time.perf_counter()
    res = rt.run(woven, ctor_kwargs=kwargs, entry="execute",
                 config=config, fresh=True)
    return time.perf_counter() - t0, res.value


def test_fig8b_threads_vs_multiproc(benchmark, tmp_path):
    report = FigureReport(
        "Figure 8b", "Thread team vs multiprocessing ranks "
        "(wall seconds, same woven kernels)",
        ["kernel", "pe", "threads_s", "multiproc_s", "multiproc/threads"])

    def experiment():
        values = {}
        for kernel, (cls, plugs, kwargs) in WORKLOADS.items():
            woven = plug(cls, plugs)
            for pe in PES:
                tcfg = (ExecConfig.sequential() if pe == 1
                        else ExecConfig.shared(pe))
                mcfg = ExecConfig.distributed(pe).with_backend("multiproc")
                tw, tv = _wall_run(woven, kwargs, tcfg, tmp_path,
                                   f"{kernel}-t{pe}")
                mw, mv = _wall_run(woven, kwargs, mcfg, tmp_path,
                                   f"{kernel}-m{pe}")
                report.add(kernel, pe, tw, mw, mw / tw)
                values.setdefault(kernel, set()).update({tv, mv})
        return values

    values = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report.emit(benchmark)

    # wall-clock ratios are host property, not asserted; correctness is:
    # every substrate and width must produce the identical result.
    for kernel, vals in values.items():
        assert len(vals) == 1, f"{kernel} diverged across substrates: {vals}"
