"""The persistent runtime service vs one-Runtime-per-job — throughput.

The cost the service amortizes is *world construction*: a naive driver
pays, per job, a fresh ``Runtime``, a fork per rank, the shared-segment
allocations, the mailbox fabric and the teardown of all of it.  The
:class:`~repro.service.daemon.RuntimeService` pays those once — its
pre-forked fleet parks between jobs, its shared-memory arena re-leases
the same segments, and activation is a ticket through an already-open
channel — and its lanes run queued jobs concurrently on the pooled
workers, which a one-at-a-time driver cannot.

This benchmark queues 100 short SOR/MolDyn jobs and drains them both
ways.  The naive arm is the strongest sequential baseline: fork start
method, data plane on, no checkpointing.  Jobs/sec is the headline
(asserted >= 2x); per-job p50/p99 latency lands in the series —
service latencies come from the daemon's own submit->finish clock, the
naive arm's from batch start to job completion, which is what a queued
caller observes.

Single-job *values* through the service are bit-identical to direct
``Runtime.run`` on multiproc — asserted per job against precomputed
references (and again, with vtime, by the service test suite).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time

import pytest

from paper_report import FigureReport
from repro.apps.moldyn import MolDyn
from repro.apps.plugs.moldyn_plugs import MOLDYN_CKPT, MOLDYN_DIST
from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.core import ExecConfig, Runtime, plug
from repro.apps.sor import SOR
from repro.dsm import shm
from repro.service import RuntimeService, ServiceClient
from repro.vtime.machine import MachineModel

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="the benchmark measures fork-based process fleets")

MACHINE = MachineModel(nodes=2, cores_per_node=4)
WORKERS, LANES, NRANKS = 4, 2, 2
JOBS = 100

SOR_W = plug(SOR, SOR_ADAPTIVE)
MOLDYN_W = plug(MolDyn, MOLDYN_DIST + MOLDYN_CKPT)

#: the mixed batch: ~2/3 SOR, ~1/3 MolDyn, all short.
SOR_KW = {"n": 32, "iterations": 4}
MOLDYN_KW = {"n": 24, "steps": 3}


def _batch() -> list[tuple[type, dict]]:
    return [(MOLDYN_W, MOLDYN_KW) if i % 3 == 2 else (SOR_W, SOR_KW)
            for i in range(JOBS)]


def _naive(tmp_path) -> tuple[float, list[float], list[object]]:
    """Sequential one-Runtime-per-job baseline on the multiproc backend."""
    cfg = ExecConfig.distributed(NRANKS).with_backend("multiproc")
    latencies, values = [], []
    t0 = time.perf_counter()
    for i, (woven, kwargs) in enumerate(_batch()):
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / f"naive{i}")
        res = rt.run(woven, ctor_kwargs=kwargs, entry="execute",
                     config=cfg, fresh=True)
        latencies.append(time.perf_counter() - t0)
        values.append(res.value)
    return time.perf_counter() - t0, latencies, values


def _service(tmp_path) -> tuple[float, list[float], list[object]]:
    """Queue the whole batch on a warm service, drain it."""
    with RuntimeService(workers=WORKERS, lanes=LANES, machine=MACHINE,
                        ckpt_dir=str(tmp_path / "svc")) as svc:
        client = ServiceClient(svc.address)
        # warm-up job: first activation pays one-time import costs.
        client.result(client.submit(SOR_W, ctor_kwargs=SOR_KW,
                                    entry="execute", nranks=NRANKS),
                      timeout=60.0)
        t0 = time.perf_counter()
        ids = [client.submit(woven, ctor_kwargs=kwargs, entry="execute",
                             nranks=NRANKS)
               for woven, kwargs in _batch()]
        latencies, values = [], []
        for jid in ids:
            out = client.result(jid, timeout=300.0)
            assert out["status"] == "done", out
            latencies.append(out["latency_s"])
            values.append(out["value"])
        wall = time.perf_counter() - t0
    return wall, latencies, values


def _pct(sorted_vals: list[float], q: float) -> float:
    i = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[i]


def test_service_throughput(benchmark, tmp_path):
    report = FigureReport(
        "Service throughput",
        f"{JOBS} queued short SOR/MolDyn jobs at {NRANKS} ranks: warm "
        f"{WORKERS}-worker/{LANES}-lane service vs one-Runtime-per-job "
        "(jobs/sec and per-job latency)",
        ["arm", "jobs_per_s", "wall_s", "p50_s", "p99_s"])

    def experiment():
        n_wall, n_lat, n_vals = _naive(tmp_path)
        s_wall, s_lat, s_vals = _service(tmp_path)
        assert s_vals == n_vals, \
            "service results diverged from direct runs"
        return (n_wall, sorted(n_lat)), (s_wall, sorted(s_lat))

    (n_wall, n_lat), (s_wall, s_lat) = benchmark.pedantic(
        experiment, rounds=1, iterations=1)
    naive_tput, svc_tput = JOBS / n_wall, JOBS / s_wall
    report.add("naive", naive_tput, n_wall,
               _pct(n_lat, 0.50), _pct(n_lat, 0.99))
    report.add("service", svc_tput, s_wall,
               _pct(s_lat, 0.50), _pct(s_lat, 0.99))
    report.emit(benchmark, json_name="service_throughput",
                extra={"jobs": JOBS, "nranks": NRANKS,
                       "workers": WORKERS, "lanes": LANES,
                       "naive_jobs_per_s": naive_tput,
                       "service_jobs_per_s": svc_tput,
                       "speedup": svc_tput / naive_tput,
                       "service_p50_s": _pct(s_lat, 0.50),
                       "service_p99_s": _pct(s_lat, 0.99),
                       "naive_p50_s": _pct(n_lat, 0.50),
                       "naive_p99_s": _pct(n_lat, 0.99)})

    if os.path.isdir("/dev/shm"):
        left = [f for f in os.listdir("/dev/shm")
                if f.startswith(shm.SHM_PREFIX)]
        assert left == [], f"leaked segments: {left}"

    # the headline: the warm fleet must at least double throughput.
    assert svc_tput >= 2.0 * naive_tput, (
        f"service only {svc_tput / naive_tput:.2f}x the naive driver "
        f"({svc_tput:.1f} vs {naive_tput:.1f} jobs/s)")
