"""Ablations on the checkpointing design choices (Section IV.A).

1. **Strategy** — per-rank *local* snapshots (two global barriers) vs
   *master-collected* snapshots (no barriers, mode-independent file).
   The paper offers both and argues for the master strategy; this
   ablation quantifies the trade: local shards write in parallel (faster
   at scale) but pin the restart to the same rank count and mode.
2. **Safe-point granularity** — "the selection of the set of safe points
   is a trade-off between checkpointing overhead and computation lost
   when a failure occurs": checkpoint every N for several N, reporting
   both the overhead and the worst-case recomputation window.
"""

from __future__ import annotations

from conftest import SOR_ITERS, p_config, run_pp_sor
from paper_report import FigureReport
from repro.ckpt.policy import EveryN, Never
from repro.core import Runtime
from repro.core.context import STRATEGY_LOCAL, STRATEGY_MASTER
from conftest import PAPER_CLUSTER


def test_ablation_checkpoint_strategy(benchmark, tmp_path):
    report = FigureReport(
        "Ablation ckpt-strategy",
        "Master-collected vs per-rank local checkpoints (one save)",
        ["ranks", "master", "local", "local/master"])

    def experiment():
        for p in (4, 8, 16, 32):
            rts = {}
            for strategy in (STRATEGY_MASTER, STRATEGY_LOCAL):
                rt = Runtime(machine=PAPER_CLUSTER,
                             ckpt_dir=tmp_path / f"ab1-{strategy}-{p}",
                             policy=EveryN(SOR_ITERS // 2),
                             ckpt_strategy=strategy)
                _, res = run_pp_sor(p_config(p), None, runtime=rt)
                rts[strategy] = res.vtime
            report.add(p, rts[STRATEGY_MASTER], rts[STRATEGY_LOCAL],
                       rts[STRATEGY_LOCAL] / rts[STRATEGY_MASTER])
        return report

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    report.emit(benchmark)
    # local shards avoid the gather: never slower than master at scale
    last = report.rows[-1]
    assert last[2] <= last[1] * 1.05


def test_ablation_safepoint_granularity(benchmark, tmp_path):
    report = FigureReport(
        "Ablation granularity",
        "Checkpoint frequency: overhead vs exposure "
        f"({SOR_ITERS} safe points total)",
        ["every N", "checkpoints", "total time", "overhead vs none",
         "worst-case lost work"])

    def experiment():
        _, none = run_pp_sor(p_config(8), tmp_path / "ab2-none",
                             policy=Never())
        per_iter = none.vtime / SOR_ITERS
        for every in (2, 5, 10, 25):
            _, res = run_pp_sor(p_config(8), tmp_path / f"ab2-{every}",
                                policy=EveryN(every))
            ncheckpoints = len([e for e in res.events.of_kind("checkpoint")
                                if e.rank == 0])
            report.add(every, ncheckpoints, res.vtime,
                       res.vtime - none.vtime, every * per_iter)
        return report

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    report.emit(benchmark)
    rows = report.rows
    # the trade-off is real: more frequent checkpoints cost more time ...
    overheads = [r[3] for r in rows]
    assert overheads[0] > overheads[-1]
    # ... but bound the lost work more tightly
    exposures = [r[4] for r in rows]
    assert exposures[0] < exposures[-1]
