"""Ablations on the checkpointing design choices (Section IV.A).

1. **Strategy** — per-rank *local* snapshots (two global barriers) vs
   *master-collected* snapshots (no barriers, mode-independent file).
   The paper offers both and argues for the master strategy; this
   ablation quantifies the trade: local shards write in parallel (faster
   at scale) but pin the restart to the same rank count and mode.
2. **Safe-point granularity** — "the selection of the set of safe points
   is a trade-off between checkpointing overhead and computation lost
   when a failure occurs": checkpoint every N for several N, reporting
   both the overhead and the worst-case recomputation window.
3. **Anchor cadence** — for incremental checkpointing, fixed full-anchor
   intervals vs the adaptive policy that retargets the cadence from the
   observed delta/full size ratio (k* = sqrt(2 f/d)).
"""

from __future__ import annotations

import numpy as np

from conftest import SOR_ITERS, p_config, run_pp_sor
from paper_report import FigureReport
from repro.ckpt.delta import IncrementalCheckpointStore
from repro.ckpt.policy import AdaptiveAnchor, EveryN, Never
from repro.ckpt.snapshot import Snapshot
from repro.core import Runtime
from repro.core.context import STRATEGY_LOCAL, STRATEGY_MASTER
from conftest import PAPER_CLUSTER


def test_ablation_checkpoint_strategy(benchmark, tmp_path):
    report = FigureReport(
        "Ablation ckpt-strategy",
        "Master-collected vs per-rank local checkpoints (one save)",
        ["ranks", "master", "local", "local/master"])

    def experiment():
        for p in (4, 8, 16, 32):
            rts = {}
            for strategy in (STRATEGY_MASTER, STRATEGY_LOCAL):
                rt = Runtime(machine=PAPER_CLUSTER,
                             ckpt_dir=tmp_path / f"ab1-{strategy}-{p}",
                             policy=EveryN(SOR_ITERS // 2),
                             ckpt_strategy=strategy)
                _, res = run_pp_sor(p_config(p), None, runtime=rt)
                rts[strategy] = res.vtime
            report.add(p, rts[STRATEGY_MASTER], rts[STRATEGY_LOCAL],
                       rts[STRATEGY_LOCAL] / rts[STRATEGY_MASTER])
        return report

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    report.emit(benchmark)
    # local shards avoid the gather: never slower than master at scale
    last = report.rows[-1]
    assert last[2] <= last[1] * 1.05


def test_ablation_safepoint_granularity(benchmark, tmp_path):
    report = FigureReport(
        "Ablation granularity",
        "Checkpoint frequency: overhead vs exposure "
        f"({SOR_ITERS} safe points total)",
        ["every N", "checkpoints", "total time", "overhead vs none",
         "worst-case lost work"])

    def experiment():
        _, none = run_pp_sor(p_config(8), tmp_path / "ab2-none",
                             policy=Never())
        per_iter = none.vtime / SOR_ITERS
        for every in (2, 5, 10, 25):
            _, res = run_pp_sor(p_config(8), tmp_path / f"ab2-{every}",
                                policy=EveryN(every))
            ncheckpoints = len([e for e in res.events.of_kind("checkpoint")
                                if e.rank == 0])
            report.add(every, ncheckpoints, res.vtime,
                       res.vtime - none.vtime, every * per_iter)
        return report

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    report.emit(benchmark)
    rows = report.rows
    # the trade-off is real: more frequent checkpoints cost more time ...
    overheads = [r[3] for r in rows]
    assert overheads[0] > overheads[-1]
    # ... but bound the lost work more tightly
    exposures = [r[4] for r in rows]
    assert exposures[0] < exposures[-1]


class _DriftApp:
    """Delta-friendly checkpoint state: a large static table plus a small
    evolving vector (model parameters vs solver state)."""

    def __init__(self, n=200_000):
        self.table = np.arange(n, dtype=np.float64)
        self.state = np.zeros(64)
        self.step = 0


def test_ablation_anchor_policy(benchmark, tmp_path):
    report = FigureReport(
        "Ablation anchor-policy",
        "Fixed full-anchor cadence vs adaptive (delta/full-ratio driven), "
        "40 incremental checkpoints of a delta-friendly workload",
        ["policy", "interval", "anchors", "MB written", "vs every-8"])

    ncheckpoints = 40

    def fill(store):
        app = _DriftApp()
        anchors = 0
        for count in range(1, ncheckpoints + 1):
            app.state += 1.0
            app.step = count
            store.write(Snapshot.capture(
                app, ["table", "state", "step"], count))
            anchors += store.last_write_kind == "full"
        return anchors, store.total_bytes_written

    def experiment():
        measured = []
        for label, anchor in (("every-2", 2), ("every-8", 8),
                              ("every-16", 16),
                              ("adaptive", AdaptiveAnchor())):
            store = IncrementalCheckpointStore(
                tmp_path / f"ab3-{label}", anchor=anchor)
            anchors, nbytes = fill(store)
            interval = anchor.interval if isinstance(anchor, AdaptiveAnchor) \
                else anchor
            measured.append((label, interval, anchors, nbytes))
        baseline = next(m[3] for m in measured if m[0] == "every-8")
        for label, interval, anchors, nbytes in measured:
            report.add(label, interval, anchors, nbytes / 1e6,
                       nbytes / baseline)
        return report

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    report.emit(benchmark)
    by_label = {r[0]: r for r in report.rows}
    # the adaptive policy learns the tiny-delta ratio, stretches the
    # chain past the default cadence, and writes fewer anchor bytes
    assert by_label["adaptive"][1] > 8
    assert by_label["adaptive"][3] < by_label["every-8"][3]
    assert by_label["adaptive"][3] < by_label["every-2"][3]
