"""Figure 3 — checkpoint overhead.

Paper: execution time of (1) the original benchmark, (2) checkpointing
via classic invasive techniques, (3) checkpointing via pluggable
parallelisation (PP), each with 0 or 1 checkpoints taken, across
sequential, 2-16 lines of execution (threads) and 2-32 processes.

Expected shape: counting safe points costs <~1%; PP adds nothing over
invasive; the only visible cost is actually saving the data (1-ckpt
columns).
"""

from __future__ import annotations

import pytest

from conftest import (
    PAPER_CLUSTER,
    SOR_ITERS,
    SOR_N,
    le_config,
    p_config,
    run_pp_sor,
)
from paper_report import FigureReport
from repro.baselines import run_mpi_sor, run_sequential_sor, run_threads_sor
from repro.ckpt.policy import AtCounts, Never
from repro.ckpt.store import CheckpointStore

LE_SERIES = [1, 2, 4, 8, 16]
P_SERIES = [2, 4, 8, 16, 32]
ONE_CKPT_AT = SOR_ITERS // 2


def _original(env: str, k: int, tmp) -> float:
    if env == "LE":
        if k == 1:
            return run_sequential_sor(n=SOR_N, iterations=SOR_ITERS,
                                      machine=PAPER_CLUSTER).vtime
        return run_threads_sor(k, n=SOR_N, iterations=SOR_ITERS,
                               machine=PAPER_CLUSTER).vtime
    return run_mpi_sor(k, n=SOR_N, iterations=SOR_ITERS,
                       machine=PAPER_CLUSTER).vtime


def _invasive(env: str, k: int, tmp, ckpts: int) -> float:
    store = CheckpointStore(tmp / f"inv-{env}-{k}-{ckpts}")
    every = ONE_CKPT_AT if ckpts else None
    # ckpt_every == ONE_CKPT_AT with SOR_ITERS < 2*ONE_CKPT_AT+1 -> 1 save
    if env == "LE":
        if k == 1:
            return run_sequential_sor(n=SOR_N, iterations=SOR_ITERS,
                                      machine=PAPER_CLUSTER, store=store,
                                      ckpt_every=every).vtime
        return run_threads_sor(k, n=SOR_N, iterations=SOR_ITERS,
                               machine=PAPER_CLUSTER, store=store,
                               ckpt_every=every).vtime
    return run_mpi_sor(k, n=SOR_N, iterations=SOR_ITERS,
                       machine=PAPER_CLUSTER, store=store,
                       ckpt_every=every).vtime


def _pp(env: str, k: int, tmp, ckpts: int) -> float:
    policy = AtCounts([ONE_CKPT_AT]) if ckpts else Never()
    config = le_config(k) if env == "LE" else p_config(k)
    _, res = run_pp_sor(config, tmp / f"pp-{env}-{k}-{ckpts}", policy=policy)
    return res.vtime


@pytest.mark.parametrize("env,series", [("LE", LE_SERIES), ("P", P_SERIES)],
                         ids=["threads", "processes"])
def test_fig3_checkpoint_overhead(benchmark, tmp_path, env, series):
    report = FigureReport(
        f"Figure 3 ({env})", "Checkpoint overhead (virtual seconds)",
        ["config", "original", "invasive 0ck", "invasive 1ck",
         "PP 0ck", "PP 1ck", "PP0/orig", "PP1/orig"])

    def experiment():
        for k in series:
            label = "seq" if (env == "LE" and k == 1) else f"{k} {env}"
            orig = _original(env, k, tmp_path)
            inv0 = _invasive(env, k, tmp_path, 0)
            inv1 = _invasive(env, k, tmp_path, 1)
            pp0 = _pp(env, k, tmp_path, 0)
            pp1 = _pp(env, k, tmp_path, 1)
            report.add(label, orig, inv0, inv1, pp0, pp1,
                       pp0 / orig, pp1 / orig)
        return report

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    report.emit(benchmark)

    # paper claims (shape assertions, generous tolerances for timer noise):
    by_label = {r[0]: r for r in report.rows}
    for label, (_, orig, _inv0, _inv1, pp0, pp1, *_ratios) in by_label.items():
        # 0-checkpoint runs pay only safe-point counting: small overhead
        assert pp0 <= orig * 1.35, f"{label}: counting overhead too high"
        # taking one checkpoint is visible but bounded
        assert pp1 <= orig * 1.8, f"{label}: single save dominates run"
