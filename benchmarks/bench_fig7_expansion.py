"""Figure 7 — run-time adaptation vs checkpoint/restart adaptation.

Paper: the application starts on 2, 4 or 8 lines of execution and 16
become available mid-run.  Expanding through the run-time protocol (grow
the team, replaying the region for the new threads) always wins over
checkpoint/restart; for 8 -> 16 the restart overhead exceeds the gain
("the restart overhead increases the execution time when adapting from 8
to 16 LE").
"""

from __future__ import annotations

from conftest import le_config, run_pp_sor
from paper_report import FigureReport
from repro.ckpt.policy import AtCounts, Never
from repro.core import AdaptStep, AdaptationPlan, ExecConfig

ITERS = 60
ADAPT_AT = 15
TARGET = 16


def test_fig7_expansion_runtime_vs_restart(benchmark, tmp_path):
    report = FigureReport(
        "Figure 7", f"Expansion to {TARGET} LE at safe point {ADAPT_AT} "
        "(virtual seconds)",
        ["start", "no adaptation", "run-time", "restart-based"])

    def experiment():
        for start in (2, 4, 8):
            _, stay = run_pp_sor(le_config(start), tmp_path / f"f7-s{start}",
                                 iterations=ITERS, policy=Never())
            live_plan = AdaptationPlan(
                [AdaptStep(ADAPT_AT, ExecConfig.shared(TARGET))])
            _, live = run_pp_sor(le_config(start), tmp_path / f"f7-l{start}",
                                 iterations=ITERS, plan=live_plan)
            restart_plan = AdaptationPlan(
                [AdaptStep(ADAPT_AT, ExecConfig.shared(TARGET),
                           via_restart=True)])
            _, rst = run_pp_sor(le_config(start), tmp_path / f"f7-r{start}",
                                iterations=ITERS,
                                policy=AtCounts([ADAPT_AT]),
                                plan=restart_plan)
            report.add(f"{start} LE", stay.vtime, live.vtime, rst.vtime)
        return report

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    report.emit(benchmark)

    rows = {r[0]: r for r in report.rows}
    for start in (2, 4, 8):
        _, stay, live, rst = rows[f"{start} LE"]
        # paper shape 1: run-time adaptation always beats restart-based
        assert live < rst, f"{start} LE: restart should cost more"
    # paper shape 2: expanding pays off from small starts
    assert rows["2 LE"][2] < rows["2 LE"][1]
    assert rows["4 LE"][2] < rows["4 LE"][1]
    # paper shape 3: restart-based 8 -> 16 is not worth it
    assert rows["8 LE"][3] > rows["8 LE"][1]
