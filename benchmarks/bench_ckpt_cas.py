"""The checkpoint object store vs the delta store: bytes and restore.

Two workloads where checkpoint cost is dominated by redundancy the
delta store cannot see because its unit of change is a whole field:

* **SOR, STRATEGY_LOCAL** — every rank saves a full-shape grid each
  checkpoint; the regions a rank doesn't own are byte-identical across
  the shard set, and the grid changes every safe point so whole-field
  deltas degenerate to fulls.  Content-defined chunks store the shared
  regions once.
* **MolDyn, STRATEGY_LOCAL** — positions and velocities are replicated
  (identical on every rank); only the partitioned forces differ.

Both runs cross an adaptation (relaunch onto a different rank count)
mid-chain, so the byte accounting spans two shard-set shapes.  A third
scenario funnels two identical jobs through the multi-tenant runtime
service, whose per-job namespaces share one CAS.

Reported: total checkpoint bytes on disk (recipes + chunks vs delta
chains), the byte-reduction ratio, and the wall time to reassemble the
newest shard set (the CAS restore fans chunk fetches and shard reads
over thread pools).  The headline series lands machine-readable in
``results/BENCH_ckpt_cas.json``.
"""

from __future__ import annotations

import multiprocessing as mp
import time

from paper_report import FigureReport
from repro.apps.moldyn import MolDyn
from repro.apps.plugs.moldyn_plugs import MOLDYN_CKPT, MOLDYN_DIST
from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.ckpt.policy import EveryN
from repro.core import (
    STRATEGY_LOCAL,
    AdaptStep,
    AdaptationPlan,
    ExecConfig,
    Runtime,
    plug,
)
from repro.vtime.machine import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=8)

#: app -> (class, plugs, ctor kwargs, safe points, adapt point).
WORKLOADS = {
    "sor": (SOR, SOR_ADAPTIVE, {"n": 192, "iterations": 16}, 16, 8),
    "moldyn": (MolDyn, MOLDYN_DIST + MOLDYN_CKPT,
               {"n": 48, "steps": 12}, 12, 6),
}

RANKS, RANKS_AFTER = 3, 4


def _disk_bytes(ckpt_dir) -> int:
    """Total checkpoint footprint: recipes/snapshots plus chunk files."""
    return sum(f.stat().st_size for f in ckpt_dir.rglob("*") if f.is_file())


def _run_chain(app, plugs, kwargs, adapt_at, tmp_path, tag, **store_kw):
    woven = plug(app, plugs)
    rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / tag,
                 policy=EveryN(3), ckpt_strategy=STRATEGY_LOCAL,
                 **store_kw)
    plan = AdaptationPlan([AdaptStep(
        at=adapt_at, config=ExecConfig.distributed(RANKS_AFTER))])
    res = rt.run(woven, ctor_kwargs=kwargs, entry="execute",
                 config=ExecConfig.distributed(RANKS), plan=plan,
                 fresh=True)
    return rt, woven, res


def _restore_wall(rt, woven) -> float:
    parts = woven.__pp_plugs__.partitioned_fields()
    t0 = time.perf_counter()
    snap = rt.store.assemble_latest_from_shards(parts)
    wall = time.perf_counter() - t0
    assert snap is not None, "no complete shard set to reassemble"
    return wall


def test_cas_vs_delta_bytes_and_restore(benchmark, tmp_path):
    report = FigureReport(
        "Ckpt CAS", "Chunked object store vs delta store "
        f"(STRATEGY_LOCAL, {RANKS}->{RANKS_AFTER} ranks)",
        ["scenario", "delta bytes", "cas bytes", "reduction",
         "delta restore s", "cas restore s"])
    headline: dict[str, float] = {}

    def experiment():
        values = {}
        for name, (app, plugs, kwargs, iters, adapt_at) in \
                WORKLOADS.items():
            rt_d, woven, res_d = _run_chain(
                app, plugs, kwargs, adapt_at, tmp_path, f"{name}-delta",
                ckpt_delta=True, ckpt_anchor_every=4)
            rt_c, _, res_c = _run_chain(
                app, plugs, kwargs, adapt_at, tmp_path, f"{name}-cas",
                ckpt_cas=True)
            assert res_c.value == res_d.value  # CAS on/off parity
            values[name] = res_c.value
            delta_bytes = _disk_bytes(rt_d.store.dir)
            cas_bytes = _disk_bytes(rt_c.store.dir)
            ratio = delta_bytes / cas_bytes
            wall_d = _restore_wall(rt_d, woven)
            wall_c = _restore_wall(rt_c, woven)
            report.add(name, delta_bytes, cas_bytes, ratio,
                       wall_d, wall_c)
            headline[f"{name}_byte_reduction"] = ratio
            headline[f"{name}_cas_restore_wall_s"] = wall_c
        return values

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    # the multi-tenant scenario: two identical jobs, one shared CAS
    if "fork" in mp.get_all_start_methods():
        from repro.service import RuntimeService, ServiceClient

        woven = plug(SOR, SOR_ADAPTIVE)
        with RuntimeService(workers=4, lanes=2, machine=MACHINE,
                            ckpt_dir=str(tmp_path / "svc"),
                            ckpt_cas=True) as svc:
            client = ServiceClient(svc.address)
            jobs = [client.submit(woven,
                                  ctor_kwargs={"n": 192, "iterations": 16},
                                  entry="execute", nranks=2,
                                  policy=EveryN(4)) for _ in range(2)]
            for jid in jobs:
                out = client.result(jid, timeout=180.0)
                assert out["status"] == "done", out
            cas = svc.store.cas
            refs = cas.chunks_stored + cas.chunks_deduped
            svc_ratio = refs / max(1, cas.chunks_stored)
            report.add("service-2job", refs, cas.chunks_stored,
                       svc_ratio, float("nan"), float("nan"))
            headline["service_chunk_dedup"] = svc_ratio

    report.emit(benchmark, json_name="ckpt_cas", extra=headline)
    # the acceptance gate: content-defined chunking must beat the delta
    # store's bytes by 1.5x on the shard-redundant SOR chain
    assert headline["sor_byte_reduction"] >= 1.5, headline
