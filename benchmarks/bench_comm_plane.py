"""The zero-copy data plane vs queue pickling — wall time, asserted.

Every payload the multiprocessing backend moves between rank processes
used to be pickled through a ``multiprocessing.Queue``: a pickle, a
pipe write, a pipe read and an unpickle per message.  The shared-memory
data plane (:mod:`repro.dsm.shm`) replaces that with one memcpy into a
pooled slab plus a ~200-byte descriptor through the queue — and, for
payloads that are already views of a registered shared segment, with a
*borrowed* descriptor whose landing assignment is a single
segment-to-segment region copy (zero intermediate copies).

This benchmark drives the real transport — ``ProcCommunicator`` over
forked rank processes — through the paper's data movements
(block scatter with halo widening, halo exchange, gather) and through
the checkpoint-collection funnel, with the plane on and off, across
rank counts.  Wall seconds are what changes; results and virtual time
are transport-independent (asserted here for the movements, and by the
five-backend parity suite for whole runs).

The headline claim is asserted: on large-array scatter + halo at 4
ranks the shm-descriptor transport beats queue pickling by >= 2x wall.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time

import numpy as np
import pytest

from paper_report import FigureReport, RESULTS_DIR
from repro.ckpt.funnel import CheckpointFunnel
from repro.ckpt.snapshot import Snapshot
from repro.ckpt.store import CheckpointStore
from repro.dsm import shm
from repro.dsm.comm import RankContext, _bind
from repro.dsm.partition import (
    BlockLayout,
    exchange_halo,
    gather_inplace,
    scatter_inplace,
)
from repro.dsm.procmail import ProcCommunicator
from repro.telemetry import MetricsRegistry, TelemetryPlane, bind
from repro.trace import (
    TraceAssembler,
    TracePlane,
    bind as trace_bind,
    schema as trace_schema,
    validate_chrome_trace,
)
from repro.vtime.clock import VClock
from repro.vtime.machine import MachineModel

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="the benchmark measures the fork-based process transport")

#: the movement workload: a block-partitioned 2-D field with a wide
#: halo (the paper's stencil shape, sized so every payload clears the
#: slab threshold by a wide margin).
ROWS, COLS, HALO = 768, 1536, 8
ROUNDS = 4
RANK_COUNTS = (2, 4)
#: checkpoint-collection workload: funnelled snapshot fields.
CKPT_FIELDS, CKPT_ROWS = 2, 512
CKPT_ROUNDS = 6

MACHINE = MachineModel(nodes=1, cores_per_node=8)


def _movement_worker(rank, nranks, channels, launch_id, transport,
                     out_queue, telemetry=False, trace="off"):
    """One rank of the scatter/halo/gather loop; reports wall + vtime.

    ``telemetry`` binds a live metrics writer on this rank's hot paths
    (data-plane tiers, pool leases, mailbox waits) exactly as a
    telemetry-enabled launch does; the scraped snapshot rides home in
    the report so the parent can aggregate and assert on it.

    ``trace`` binds a ring writer the same way (``"full"`` for the
    default-depth ring, ``"flight"`` for the small flight-recorder
    ring): every message send stamps a sequence id and every mailbox
    receive records its wait, exactly as a traced launch does.  The
    scraped records ride home so the parent can assemble a real
    document from the run.

    ``transport``: ``"queue"`` pickles every payload through the pipes,
    ``"slab"`` moves large arrays through pooled slabs, ``"direct"``
    additionally places the root's field in a shared segment registered
    as borrowable — scatter descriptors then reference the *source*
    segment and each receiver's landing assignment is one
    segment-to-segment region copy, zero intermediate copies.  (The
    scatter-side borrow is protocol-safe because the barrier after the
    scatter bounds it: nothing writes the source regions until every
    receiver has landed its copy.)
    """
    plane = None
    if transport != "queue":
        plane = shm.DataPlane(shm.BufferPool(launch_id, rank))
    tplane = None
    if telemetry:
        tplane = TelemetryPlane.local(nranks, backend="bench")
        bind(tplane.writer(rank))
    trplane = None
    if trace != "off":
        cap = (trace_schema.FLIGHT_CAPACITY if trace == "flight"
               else trace_schema.DEFAULT_CAPACITY)
        trplane = TracePlane.local(nranks, capacity=cap)
        trace_bind(trplane.writer(rank))
    comm = ProcCommunicator(rank, nranks, MACHINE, channels, plane=plane)
    clock = VClock()
    _bind(RankContext(rank=rank, nranks=nranks, clock=clock, comm=comm))
    layout = BlockLayout(axis=0, halo=HALO)
    seg = None
    if rank == 0:
        if transport == "direct":
            seg = shm.ShmSegment.allocate(
                shm.segment_name(launch_id, "field"), (ROWS, COLS),
                np.float64)
            arr = seg.ndarray()
            arr[...] = np.arange(ROWS * COLS, dtype=np.float64
                                 ).reshape(ROWS, COLS)
            plane.register_borrow(arr, seg.name)
        else:
            arr = np.arange(ROWS * COLS, dtype=np.float64
                            ).reshape(ROWS, COLS)
    else:
        arr = np.zeros((ROWS, COLS))
    try:
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(ROUNDS):
            scatter_inplace(comm, arr, layout, root=0)
            comm.barrier()  # bounds the direct arm's source borrows
            exchange_halo(comm, arr, layout)
            gather_inplace(comm, arr, layout, root=0)
        comm.barrier()
        wall = time.perf_counter() - t0
        checksum = float(arr.sum()) if rank == 0 else 0.0
        snap = None
        if tplane is not None:
            reg = MetricsRegistry()
            reg.absorb(tplane.scrape())
            snap = reg.snapshot()
        trecs = None
        if trplane is not None:
            trecs = trplane.scrape().get(rank, [])
        out_queue.put((rank, wall, clock.now, checksum,
                       plane.stats() if plane else None, snap, trecs))
    finally:
        _bind(None)
        if tplane is not None:
            bind(None)
            tplane.close()
        if trplane is not None:
            trace_bind(None)
            trplane.close()
        if plane is not None:
            plane.close()
        if seg is not None:
            seg.unlink()


def _ckpt_worker(rank, nranks, store_client, launch_id, use_plane,
                 out_queue):
    """Rank 0 funnels snapshots to the parent store; peers idle."""
    plane = None
    if use_plane:
        plane = shm.DataPlane(shm.BufferPool(launch_id, rank))
        store_client.plane = plane
    try:
        wall = 0.0
        if rank == 0:
            fields = {f"f{i}": np.random.default_rng(i).random(
                (CKPT_ROWS, COLS)) for i in range(CKPT_FIELDS)}
            t0 = time.perf_counter()
            for count in range(CKPT_ROUNDS):
                snap = Snapshot(app="bench", safepoint_count=count,
                                fields=fields, mode="distributed")
                store_client.write(snap)
            wall = time.perf_counter() - t0
        out_queue.put((rank, wall, 0.0, 0.0, None))
    finally:
        if plane is not None:
            plane.close()


def _launch(target, nranks, transport, store=None, telemetry=False,
            trace="off"):
    """Fork ``nranks`` workers, collect their reports, sweep the slabs."""
    ctx = mp.get_context("fork")
    launch_id = shm.new_launch_id()
    channels = [ctx.Queue() for _ in range(nranks)]
    out_queue = ctx.Queue()
    funnel = None
    procs = []
    try:
        for r in range(nranks):
            if target is _ckpt_worker:
                if funnel is None:
                    funnel = CheckpointFunnel(store, ctx, nranks)
                args = (r, nranks, funnel.client(r), launch_id,
                        transport != "queue", out_queue)
            else:
                args = (r, nranks, channels, launch_id, transport,
                        out_queue, telemetry, trace)
            p = ctx.Process(target=target, args=args, daemon=True)
            procs.append(p)
            p.start()
        if funnel is not None:
            funnel.start()
        reports = [out_queue.get(timeout=120.0) for _ in range(nranks)]
        return sorted(reports)
    finally:
        for p in procs:
            p.join(timeout=30.0)
        for p in procs:
            if p.is_alive():
                p.terminate()
        if funnel is not None:
            funnel.stop()
        shm.unlink_pool(launch_id, nranks)
        shm.unlink_by_name(shm.segment_name(launch_id, "field"))


def _no_leaks():
    if os.path.isdir("/dev/shm"):
        left = [f for f in os.listdir("/dev/shm")
                if f.startswith(shm.SHM_PREFIX)]
        assert left == [], f"leaked segments: {left}"


def test_comm_plane(benchmark, tmp_path):
    report = FigureReport(
        "Comm plane",
        "Queue-pickle vs shm-descriptor transport: wall seconds for "
        f"{ROUNDS} rounds of scatter+halo+gather over a "
        f"{ROWS}x{COLS} float64 field, and {CKPT_ROUNDS} funnelled "
        f"checkpoint collections of {CKPT_FIELDS}x{CKPT_ROWS}x{COLS}",
        ["workload", "ranks", "queue_s", "shm_s", "direct_s", "speedup"])

    def experiment():
        rows = {}
        for nranks in RANK_COUNTS:
            q = _launch(_movement_worker, nranks, "queue")
            s = _launch(_movement_worker, nranks, "slab")
            d = _launch(_movement_worker, nranks, "direct")
            q_wall = max(r[1] for r in q)
            s_wall = max(r[1] for r in s)
            d_wall = max(r[1] for r in d)
            # transport independence: same data, same modelled time
            assert s[0][3] == q[0][3] == d[0][3], \
                "transports diverged on data"
            assert s[0][2] == pytest.approx(q[0][2]) \
                and d[0][2] == pytest.approx(q[0][2]), \
                "transports diverged on virtual time"
            assert s[0][4]["slab"] > 0, f"plane never engaged: {s[0][4]}"
            assert d[0][4]["borrow"] > 0, \
                f"direct path never engaged: {d[0][4]}"
            rows[("scatter+halo", nranks)] = (q_wall, s_wall, d_wall)
            report.add("scatter+halo+gather", nranks, q_wall, s_wall,
                       d_wall, q_wall / s_wall)
        for nranks in RANK_COUNTS:
            store_q = CheckpointStore(tmp_path / f"q{nranks}")
            store_s = CheckpointStore(tmp_path / f"s{nranks}")
            q = _launch(_ckpt_worker, nranks, "queue", store=store_q)
            s = _launch(_ckpt_worker, nranks, "slab", store=store_s)
            q_wall, s_wall = q[0][1], s[0][1]
            qb = {p.name: p.read_bytes()
                  for p in sorted(store_q.dir.iterdir()) if p.is_file()}
            sb = {p.name: p.read_bytes()
                  for p in sorted(store_s.dir.iterdir()) if p.is_file()}
            assert qb == sb and len(qb) > 0, \
                "checkpoint bytes diverged across transports"
            rows[("ckpt", nranks)] = (q_wall, s_wall)
            report.add("ckpt-collection", nranks, q_wall, s_wall,
                       float("nan"), q_wall / s_wall)
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    q4, s4, d4 = rows[("scatter+halo", 4)]
    report.emit(benchmark, json_name="comm_plane",
                extra={"speedup_slab_4r": q4 / s4,
                       "speedup_direct_4r": q4 / d4})
    _no_leaks()

    # the headline: >= 2x wall on large-array scatter+halo at 4+ ranks
    q_wall, s_wall, d_wall = rows[("scatter+halo", 4)]
    assert s_wall * 2.0 <= q_wall, (
        f"shm transport only {q_wall / s_wall:.2f}x faster than queue "
        f"pickling on scatter+halo at 4 ranks ({s_wall:.3f}s vs "
        f"{q_wall:.3f}s)")
    assert d_wall * 2.0 <= q_wall, (
        f"direct transport only {q_wall / d_wall:.2f}x faster than "
        f"queue pickling at 4 ranks")
    # the funnel path must not regress; its measured edge is ~1.2x
    # (encode + disk dominate), so gate with noise headroom instead of
    # a zero-margin strict win a loaded CI runner would flake on.
    q_wall, s_wall = rows[("ckpt", 4)]
    assert s_wall < 1.3 * q_wall, (
        f"checkpoint collection regressed over the plane: {s_wall:.3f}s "
        f"vs {q_wall:.3f}s queue")


# ---------------------------------------------------------------------------
# telemetry overhead: bound metrics writers on the same hot paths
# ---------------------------------------------------------------------------
#: repetitions per arm — min-of-N filters scheduler noise out of a
#: single-digit-percent assertion.
TELE_REPS = 3


def test_telemetry_overhead(benchmark):
    """The metrics plane must be invisible in the data it produces and
    nearly invisible in the wall clock: the slab-transport movement
    workload with writers bound on every hot path (tier counters, pool
    leases, mailbox waits) stays within 3% of the unbound run, and the
    checksums agree bit-exactly — telemetry is wall-side only."""
    report = FigureReport(
        "Telemetry overhead",
        "Movement workload (slab transport) with metrics writers bound "
        f"vs unbound: min-of-{TELE_REPS} wall seconds for {ROUNDS} "
        f"rounds of scatter+halo+gather over a {ROWS}x{COLS} float64 "
        "field at 4 ranks",
        ["ranks", "off_s", "on_s", "on/off"])

    def experiment():
        def arm(flag):
            walls, reps = [], None
            for _ in range(TELE_REPS):
                reps = _launch(_movement_worker, 4, "slab",
                               telemetry=flag)
                walls.append(max(r[1] for r in reps))
            return min(walls), reps
        off, off_reps = arm(False)
        on, on_reps = arm(True)
        # bit-identical results and virtual time, telemetry on or off
        assert on_reps[0][3] == off_reps[0][3], \
            "telemetry changed the data"
        assert on_reps[0][2] == pytest.approx(off_reps[0][2]), \
            "telemetry changed virtual time"
        reg = MetricsRegistry()
        for r in on_reps:
            if r[5] is not None:
                reg.absorb_snapshot(r[5])
        # the writers were live: the plane counted real traffic
        assert reg.value("repro_dsm_send_msgs_total",
                         {"tier": "slab"}) > 0, "slab tier never counted"
        assert reg.value("repro_dsm_pool_leases_total") > 0
        assert reg.value("repro_dsm_mailbox_recvs_total") > 0
        return off, on, reg

    off, on, reg = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report.add(4, off, on, on / off)
    report.emit(benchmark, json_name="telemetry_overhead",
                extra={"overhead_ratio": on / off}, metrics=reg)
    _no_leaks()
    # the acceptance bar: <= 3% wall overhead (plus a fixed headroom so
    # a loaded runner's jitter on sub-second walls cannot flake it).
    assert on <= off * 1.03 + 0.05, (
        f"telemetry overhead {on / off:.3f}x exceeds 3% "
        f"({on:.3f}s on vs {off:.3f}s off)")


# ---------------------------------------------------------------------------
# tracing overhead: ring writers on the same hot paths
# ---------------------------------------------------------------------------
TRACE_REPS = 3


def test_tracing_overhead(benchmark):
    """The trace plane must also be invisible in the data and nearly
    invisible in the wall clock: the slab-transport movement workload
    with ring writers bound (send stamps + receive-wait records on
    every message) stays within 5% of the unbound run, full-depth and
    flight-recorder rings measured separately — and the records that
    came back assemble into a schema-valid Chrome document
    (``benchmarks/results/trace.json``, Perfetto-loadable)."""
    import json

    report = FigureReport(
        "Tracing overhead",
        "Movement workload (slab transport) with trace-ring writers "
        f"bound vs unbound: min-of-{TRACE_REPS} wall seconds for "
        f"{ROUNDS} rounds of scatter+halo+gather over a {ROWS}x{COLS} "
        "float64 field at 4 ranks",
        ["ranks", "off_s", "full_s", "flight_s", "full/off",
         "flight/off"])

    def experiment():
        def arm(mode):
            walls, reps = [], None
            for _ in range(TRACE_REPS):
                reps = _launch(_movement_worker, 4, "slab", trace=mode)
                walls.append(max(r[1] for r in reps))
            return min(walls), reps
        off, off_reps = arm("off")
        full, full_reps = arm("full")
        flight, flight_reps = arm("flight")
        # bit-identical results and virtual time, tracing on or off
        assert full_reps[0][3] == off_reps[0][3] == flight_reps[0][3], \
            "tracing changed the data"
        assert full_reps[0][2] == pytest.approx(off_reps[0][2]), \
            "tracing changed virtual time"
        # the writers were live: real message traffic came back, and it
        # assembles into a valid document with cross-rank flow arrows.
        asm = TraceAssembler()
        for r in full_reps:
            asm.add(r[0], r[6])
        doc = asm.emit()
        counts = validate_chrome_trace(doc)
        assert counts["flows"] > 0, "no flow edges in the bench trace"
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "trace.json").write_text(json.dumps(doc))
        # flight rings are bounded by construction: the black box never
        # outgrows its capacity however much traffic flowed.
        for r in flight_reps:
            assert len(r[6]) <= trace_schema.FLIGHT_CAPACITY
        return off, full, flight, counts

    off, full, flight, counts = benchmark.pedantic(experiment, rounds=1,
                                                   iterations=1)
    report.add(4, off, full, flight, full / off, flight / off)
    report.emit(benchmark, json_name="tracing_overhead",
                extra={"overhead_full": full / off,
                       "overhead_flight": flight / off,
                       "trace_events": counts["events"],
                       "trace_flows": counts["flows"]})
    _no_leaks()
    # the acceptance bar: <= 5% wall overhead per mode (plus the same
    # fixed headroom the telemetry gate uses against runner jitter).
    assert full <= off * 1.05 + 0.05, (
        f"tracing overhead {full / off:.3f}x exceeds 5% "
        f"({full:.3f}s on vs {off:.3f}s off)")
    assert flight <= off * 1.05 + 0.05, (
        f"flight-recorder overhead {flight / off:.3f}x exceeds 5% "
        f"({flight:.3f}s on vs {off:.3f}s off)")


# ---------------------------------------------------------------------------
# topology-aware collectives: intra-node queues vs inter-node frames
# ---------------------------------------------------------------------------
#: collective workload on the hierarchical fabric (per-round payload).
COLL_ELEMS = 128 * 1024  # 1 MiB of float64
COLL_ROUNDS = 4
COLL_RANKS = 4

TREE_MACHINE = MachineModel(nodes=2, cores_per_node=4, coll_algo="tree")


def _coll_worker(rank, nranks, channels, layout, addr_q, map_q, out_queue):
    """One rank of the bcast/gather/reduce loop on the sockets fabric.

    ``layout``: ``"intra"`` places every rank on one physical node (all
    traffic through the queue fabric, zero TCP frames); ``"inter"``
    gives each rank its own node (every remote hop a framed loopback
    TCP message).  Same machine model, same payloads — the wall-time
    difference is the transport cost the hierarchical router avoids for
    co-located peers.
    """
    from repro.dsm.socketmail import HierarchicalCommunicator, SocketTransport

    pnode = (lambda r: 0) if layout == "intra" else (lambda r: r)
    transport = SocketTransport(rank, channels, pnode)
    addr_q.put((rank, transport.address))
    addresses = map_q.get(timeout=60.0)
    transport.set_addresses(addresses)
    comm = HierarchicalCommunicator(rank, nranks, TREE_MACHINE, transport)
    clock = VClock()
    _bind(RankContext(rank=rank, nranks=nranks, clock=clock, comm=comm))
    data = np.arange(COLL_ELEMS, dtype=np.float64) * (rank + 1)
    try:
        comm.barrier()
        t0 = time.perf_counter()
        checksum = 0.0
        for _ in range(COLL_ROUNDS):
            b = comm.bcast(data if rank == 0 else None, root=0)
            g = comm.gather(float(data[rank]), root=0)
            s = comm.reduce(float(rank + 1), root=0)
            if rank == 0:
                checksum += float(b.sum()) + sum(g) + s
        comm.barrier()
        wall = time.perf_counter() - t0
        frames = sum(transport.frame_counts().values())
        out_queue.put((rank, wall, clock.now, checksum, frames))
    finally:
        _bind(None)
        transport.close()


def _launch_coll(nranks, layout):
    ctx = mp.get_context("fork")
    channels = [ctx.Queue() for _ in range(nranks)]
    addr_q, map_q, out_queue = ctx.Queue(), ctx.Queue(), ctx.Queue()
    procs = [ctx.Process(target=_coll_worker,
                         args=(r, nranks, channels, layout, addr_q,
                               map_q, out_queue), daemon=True)
             for r in range(nranks)]
    try:
        for p in procs:
            p.start()
        addresses = dict(addr_q.get(timeout=60.0) for _ in range(nranks))
        for _ in range(nranks):
            map_q.put(addresses)
        return sorted(out_queue.get(timeout=120.0) for _ in range(nranks))
    finally:
        for p in procs:
            p.join(timeout=30.0)
        for p in procs:
            if p.is_alive():
                p.terminate()


def test_hier_collectives_intra_vs_inter(benchmark):
    """The topology-routing variant: the same tree collectives cost
    queue handoffs when ranks share a node and framed TCP round trips
    when they do not.  Both layouts must agree bit-exactly on the data;
    the frame counters prove which fabric carried it."""
    report = FigureReport(
        "Hierarchical collectives",
        "Intra-node (queue fabric) vs inter-node (framed loopback TCP) "
        f"wall seconds for {COLL_ROUNDS} rounds of bcast+gather+reduce "
        f"of {COLL_ELEMS} float64 on the sockets fabric",
        ["workload", "ranks", "intra_s", "inter_s", "inter/intra"])

    def experiment():
        intra = _launch_coll(COLL_RANKS, "intra")
        inter = _launch_coll(COLL_RANKS, "inter")
        # same collectives, same data, whatever carried them
        assert intra[0][3] == inter[0][3], "layouts diverged on data"
        # co-located ranks never touch the wire; separated ranks must
        assert all(r[4] == 0 for r in intra), \
            f"intra-node layout sent TCP frames: {intra}"
        assert sum(r[4] for r in inter) > 0, \
            "inter-node layout never framed a message"
        intra_w = max(r[1] for r in intra)
        inter_w = max(r[1] for r in inter)
        report.add("bcast+gather+reduce", COLL_RANKS, intra_w, inter_w,
                   inter_w / intra_w)
        return intra_w, inter_w

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    report.emit(benchmark)
    _no_leaks()
