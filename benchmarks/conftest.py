"""Shared fixtures and experiment drivers for the figure benchmarks.

All benchmarks use the woven JGF SOR (the paper's evaluation app) on the
paper's two testbeds:

* ``PAPER_CLUSTER``     — 2 nodes x 24 cores (Figures 3-8's cluster);
* ``EIGHT_CORE_CLUSTER``— 4 nodes x 8 cores (Figure 9's cluster).

``run_pp_sor`` launches the pluggable-parallelisation version in any
configuration with any checkpoint policy and returns the RunResult, whose
virtual time is what the figures report.  pytest-benchmark wraps each
experiment once (``pedantic`` with one round) — wall time of the harness
is incidental; the reproduced series are the virtual times.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.ckpt.policy import CheckpointPolicy
from repro.core import ExecConfig, Runtime, plug
from repro.vtime.machine import MachineModel

PAPER_CLUSTER = MachineModel(nodes=2, cores_per_node=24)
EIGHT_CORE_CLUSTER = MachineModel(nodes=4, cores_per_node=8)

#: the figure benchmarks' SOR problem (sized for a laptop harness; the
#: paper's absolute seconds are not reproducible, its ratios are).
SOR_N = 700
SOR_ITERS = 100

WOVEN_SOR = plug(SOR, SOR_ADAPTIVE)


def run_pp_sor(config: ExecConfig, tmp_dir, policy: CheckpointPolicy | None = None,
               machine: MachineModel = PAPER_CLUSTER, n: int = SOR_N,
               iterations: int = SOR_ITERS, plan=None, injector=None,
               auto_recover: bool = False, recover_config=None,
               runtime: Runtime | None = None, fresh: bool = True):
    rt = runtime if runtime is not None else Runtime(
        machine=machine, ckpt_dir=tmp_dir, policy=policy)
    res = rt.run(WOVEN_SOR, ctor_kwargs={"n": n, "iterations": iterations},
                 entry="execute", config=config, plan=plan,
                 injector=injector, auto_recover=auto_recover,
                 recover_config=recover_config, fresh=fresh)
    return rt, res


def le_config(le: int) -> ExecConfig:
    """'Lines of execution' (the paper's thread axis)."""
    return ExecConfig.sequential() if le == 1 else ExecConfig.shared(le)


def p_config(p: int) -> ExecConfig:
    """MPI-style process count (the paper's P axis)."""
    return ExecConfig.distributed(p)


@pytest.fixture()
def ckpt_dir(tmp_path):
    return tmp_path / "ckpt"


#: pinned per-row-per-phase cost of the SOR stencil kernel.  The figure
#: *ratios* depend on the compute : communication : disk proportions, so
#: the compute rate is part of the machine model rather than a property
#: of whichever host happens to run the suite.  7 us/row reproduces the
#: paper's proportions at the N=700 harness size (see EXPERIMENTS.md).
SOR_RELAX_RATE = 7e-6


@pytest.fixture(scope="session", autouse=True)
def calibrate_kernels():
    """Pin the benchmark kernels' compute rates (deterministic figures)."""
    from repro.vtime.calibrate import GLOBAL_CALIBRATOR

    GLOBAL_CALIBRATOR.pin("SOR.relax", SOR_RELAX_RATE)
    yield
