"""Reporting helpers: print and persist paper-style series.

Each figure benchmark produces the same rows/series the paper plots.
Because pytest captures stdout, every report is also written to
``benchmarks/results/<figure>.txt`` so the regenerated series survive a
quiet run; attach the rows to ``benchmark.extra_info`` as well and they
land in pytest-benchmark's JSON when ``--benchmark-json`` is used.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


class FigureReport:
    """Collects labelled rows for one paper figure and renders a table."""

    def __init__(self, figure: str, title: str,
                 columns: list[str]) -> None:
        self.figure = figure
        self.title = title
        self.columns = columns
        self.rows: list[list[object]] = []

    def add(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(f"expected {len(self.columns)} values")
        self.rows.append(list(values))

    # ------------------------------------------------------------------
    def render(self) -> str:
        widths = [max(len(str(c)), *(len(_fmt(r[i])) for r in self.rows))
                  if self.rows else len(str(c))
                  for i, c in enumerate(self.columns)]
        lines = [f"== {self.figure}: {self.title} =="]
        lines.append("  ".join(str(c).ljust(w)
                               for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in self.rows:
            lines.append("  ".join(_fmt(v).ljust(w)
                                   for v, w in zip(r, widths)))
        return "\n".join(lines)

    def emit(self, benchmark=None, json_name: str | None = None,
             extra: dict | None = None, metrics=None) -> None:
        text = self.render()
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / f"{self.figure.lower().replace(' ', '_')}.txt"
        out.write_text(text + os.linesep)
        if json_name is not None:
            self.emit_json(json_name, extra, metrics=metrics)
        if benchmark is not None:
            benchmark.extra_info["figure"] = self.figure
            benchmark.extra_info["columns"] = self.columns
            benchmark.extra_info["rows"] = [
                [_fmt(v) for v in r] for r in self.rows]

    def emit_json(self, name: str, extra: dict | None = None,
                  metrics=None) -> Path:
        """Write the series machine-readable: ``BENCH_<name>.json``.

        The rows land raw (unformatted values, NaN encoded as ``null``)
        under the same column names the table prints, plus whatever
        headline metrics the benchmark passes in ``extra`` — so a plot
        script or a CI trend tracker never parses the text table.

        ``metrics`` embeds a telemetry snapshot under the ``"metrics"``
        key: pass a :class:`~repro.telemetry.MetricsRegistry` or an
        already-serialized ``registry.snapshot()`` dict.  The embedded
        section uses the same ``repro_<subsystem>_<metric>{rank=,
        backend=,job=}`` naming as the Prometheus exposition and the
        service ``stats`` RPC — one vocabulary across every surface.
        """
        RESULTS_DIR.mkdir(exist_ok=True)
        doc = {
            "name": name,
            "figure": self.figure,
            "title": self.title,
            "columns": self.columns,
            "rows": [[_jsonable(v) for v in r] for r in self.rows],
        }
        if extra:
            doc["extra"] = {k: _jsonable(v) for k, v in extra.items()}
        if metrics is not None:
            snap = getattr(metrics, "snapshot", None)
            doc["metrics"] = snap() if callable(snap) else metrics
        out = RESULTS_DIR / f"BENCH_{name}.json"
        out.write_text(json.dumps(doc, indent=2) + os.linesep)
        return out


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.4f}"
    return str(v)


def _jsonable(v: object) -> object:
    if isinstance(v, float):
        return v if v == v else None  # NaN -> null
    if isinstance(v, (int, str, bool)) or v is None:
        return v
    return str(v)
