"""Figure 6 — restart on more resources after a failure.

Paper: the application starts on 2 processes; at iteration 26 it is
restarted on 8 processes; the per-iteration time drops after the restart
and the overall execution time is shortened "to more than half"
(compared with continuing on 2 processes).
"""

from __future__ import annotations

from conftest import p_config, run_pp_sor
from paper_report import FigureReport
from repro.ckpt.failure import FailureInjector
from repro.ckpt.policy import AtCounts
from repro.core import ExecConfig

ITERS = 80
RESTART_AT = 26


def test_fig6_restart_with_more_resources(benchmark, tmp_path):
    report = FigureReport(
        "Figure 6", "Per-iteration time: 2 P, restarted on 8 P at "
        f"iteration {RESTART_AT} (virtual seconds)",
        ["iteration", "time/iter"])

    def experiment():
        _, res = run_pp_sor(
            p_config(2), tmp_path / "f6", policy=AtCounts([RESTART_AT - 1]),
            iterations=ITERS,
            injector=FailureInjector(fail_at=RESTART_AT),
            auto_recover=True,
            recover_config=lambda restarts: ExecConfig.distributed(8))
        return res

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # reconstruct the per-iteration series from rank-0 safe-point events,
    # keeping the *first* timestamp per count: replay re-passes counts
    # 1..25 in a bunch, but the observable timeline is when each
    # iteration's work was really done.
    stamps: dict[int, float] = {}
    for ev in res.events.of_kind("safepoint"):
        stamps.setdefault(ev.data["count"], ev.vtime)
    counts = sorted(stamps)
    per_iter = {}
    for a, b in zip(counts, counts[1:]):
        if b == a + 1:
            per_iter[b] = stamps[b] - stamps[a]
    for it in sorted(per_iter):
        report.add(it, per_iter[it])
    report.emit(benchmark)

    before = [v for k, v in per_iter.items() if k < RESTART_AT - 1]
    after = [v for k, v in per_iter.items() if k > RESTART_AT + 1]
    avg_before = sum(before) / len(before)
    avg_after = sum(after) / len(after)
    # paper shape 1: iterations get ~4x faster on 8 P vs 2 P
    assert avg_after < avg_before / 2

    # paper shape 2: total time beats staying on 2 P
    _, stay = run_pp_sor(p_config(2), tmp_path / "f6-stay",
                         iterations=ITERS)
    assert res.vtime < stay.vtime
    report2 = FigureReport(
        "Figure 6 totals", "Total execution (virtual seconds)",
        ["variant", "total"])
    report2.add("2 P throughout", stay.vtime)
    report2.add(f"2 P -> 8 P at iter {RESTART_AT}", res.vtime)
    report2.emit()
