"""Figure 4 — time to save checkpoint data.

Paper: the cost of one checkpoint save per environment.  Most of the
cost is writing the application data (the sequential baseline); shared
memory adds slightly (a barrier pair); distributed memory adds more (the
partitioned data is collected at the root), worst at 32 P where the data
crosses machines.

The second experiment bends this curve: incremental (delta) checkpoints
skip unchanged fields, the async double-buffered writer hides the disk
write behind the following compute phase, and zlib section compression
shrinks what does hit the disk — together they cut both bytes written
and the modelled save overhead versus the paper's full synchronous
snapshot at every checkpoint.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import (
    SOR_ITERS,
    SOR_N,
    SOR_RELAX_RATE,
    le_config,
    p_config,
    run_pp_sor,
)
from paper_report import FigureReport
from repro.apps.sor import SOR
from repro.ckpt.policy import AtCounts, EveryN, Never
from repro.core import (
    ExecConfig,
    ForMethod,
    IgnorableMethod,
    PlugSet,
    Runtime,
    SafeData,
    SafePointAfter,
    plug,
)
from repro.vtime.machine import MachineModel

CONFIGS = [("seq", le_config(1))] + \
    [(f"{k} LE", le_config(k)) for k in (2, 4, 8, 16)] + \
    [(f"{k} P", p_config(k)) for k in (2, 4, 8, 16, 32)]

CKPT_AT = SOR_ITERS // 2


def test_fig4_save_cost(benchmark, tmp_path):
    report = FigureReport(
        "Figure 4", "Time to save checkpoint data (virtual seconds)",
        ["config", "no ckpt", "one ckpt", "save cost", "io portion"])

    def experiment():
        for label, config in CONFIGS:
            _, res0 = run_pp_sor(config, tmp_path / f"f4-0-{label}",
                                 policy=Never())
            _, res1 = run_pp_sor(config, tmp_path / f"f4-1-{label}",
                                 policy=AtCounts([CKPT_AT]))
            ck = res1.events.of_kind("checkpoint")
            io = ck[-1].data["save_seconds"] if ck else 0.0
            report.add(label, res0.vtime, res1.vtime,
                       res1.vtime - res0.vtime, io)
        return report

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    report.emit(benchmark)

    cost = {r[0]: r[3] for r in report.rows}
    seq = cost["seq"]
    assert seq > 0, "saving must cost something"
    # paper shape 1: the LE series stays close to the sequential cost
    # (only a barrier pair on top of the write)
    for k in (2, 4, 8, 16):
        assert cost[f"{k} LE"] == pytest.approx(seq, rel=0.5)
    # paper shape 2: distributed saves cost more (root collects the data)
    assert cost["16 P"] > seq
    # paper shape 3: 32 P is the worst case (inter-machine gather)
    assert cost["32 P"] > cost["16 P"] * 1.03
    assert cost["32 P"] > seq * 1.05


# ---------------------------------------------------------------------------
# incremental / async / compressed save-cost variants
# ---------------------------------------------------------------------------
class StaticSOR(SOR):
    """SOR plus a large static SafeData field (the unchanged-field
    workload): model parameters that recovery needs but iteration never
    mutates — exactly what full snapshots keep re-writing for nothing."""

    def __init__(self, n: int = 100, iterations: int = 100, **kw) -> None:
        super().__init__(n=n, iterations=iterations, **kw)
        # 2x the grid's footprint, and compressible (structured data).
        self.table = np.zeros((n, 2 * n))


STATIC_SOR_CKPT = PlugSet(
    # ForMethod charges the stencil compute to virtual time (pinned
    # rate), which is the phase the async writer overlaps with.
    ForMethod("relax"),
    SafeData("G", "iterations_done", "table"),
    SafePointAfter("end_iteration"),
    IgnorableMethod("sweep"),
    name="static-sor-ckpt",
)

WOVEN_STATIC = plug(StaticSOR, STATIC_SOR_CKPT)

CKPT_EVERY = 10

VARIANTS = [
    ("full sync", {}),
    ("incremental", dict(ckpt_delta=True, ckpt_anchor_every=5)),
    ("incr+async", dict(ckpt_delta=True, ckpt_anchor_every=5,
                        ckpt_async=True)),
    ("incr+async+zlib", dict(ckpt_delta=True, ckpt_anchor_every=5,
                             ckpt_async=True,
                             ckpt_compress_min_bytes=1 << 12)),
]


def test_fig4_incremental_async_variants(benchmark, tmp_path):
    from repro.vtime.calibrate import GLOBAL_CALIBRATOR

    GLOBAL_CALIBRATOR.pin("StaticSOR.relax", SOR_RELAX_RATE)
    machine = MachineModel(nodes=2, cores_per_node=24)
    report = FigureReport(
        "Figure 4b", "Incremental + async checkpoint save cost "
        "(10 checkpoints, static-parameter workload)",
        ["variant", "vtime", "ckpt overhead", "bytes written"])

    def run_variant(label, rt_kw, policy):
        rt = Runtime(machine=machine, ckpt_dir=tmp_path / f"f4b-{label}",
                     policy=policy, **rt_kw)
        res = rt.run(WOVEN_STATIC,
                     ctor_kwargs={"n": SOR_N, "iterations": SOR_ITERS},
                     entry="execute", config=ExecConfig.sequential(),
                     fresh=True)
        rt.close()
        return res, rt.store.total_bytes_written

    def experiment():
        res0, _ = run_variant("none", {}, Never())
        for label, rt_kw in VARIANTS:
            res, nbytes = run_variant(label, rt_kw, EveryN(CKPT_EVERY))
            report.add(label, res.vtime, res.vtime - res0.vtime, nbytes)
        return report

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    report.emit(benchmark)

    overhead = {r[0]: r[2] for r in report.rows}
    nbytes = {r[0]: r[3] for r in report.rows}
    # incremental snapshots skip the static field: >= 2x fewer bytes
    assert nbytes["incremental"] * 2 <= nbytes["full sync"]
    # compression shrinks what remains further
    assert nbytes["incr+async+zlib"] < nbytes["incremental"]
    # the async writer hides the (already smaller) write behind compute
    assert overhead["incr+async"] < overhead["incremental"]
    # combined: the modelled save overhead collapses vs. full sync saves
    assert overhead["incr+async"] * 2 < overhead["full sync"]
    assert overhead["incr+async+zlib"] * 2 < overhead["full sync"]
