"""Figure 4 — time to save checkpoint data.

Paper: the cost of one checkpoint save per environment.  Most of the
cost is writing the application data (the sequential baseline); shared
memory adds slightly (a barrier pair); distributed memory adds more (the
partitioned data is collected at the root), worst at 32 P where the data
crosses machines.
"""

from __future__ import annotations

import pytest

from conftest import SOR_ITERS, le_config, p_config, run_pp_sor
from paper_report import FigureReport
from repro.ckpt.policy import AtCounts, Never

CONFIGS = [("seq", le_config(1))] + \
    [(f"{k} LE", le_config(k)) for k in (2, 4, 8, 16)] + \
    [(f"{k} P", p_config(k)) for k in (2, 4, 8, 16, 32)]

CKPT_AT = SOR_ITERS // 2


def test_fig4_save_cost(benchmark, tmp_path):
    report = FigureReport(
        "Figure 4", "Time to save checkpoint data (virtual seconds)",
        ["config", "no ckpt", "one ckpt", "save cost", "io portion"])

    def experiment():
        for label, config in CONFIGS:
            _, res0 = run_pp_sor(config, tmp_path / f"f4-0-{label}",
                                 policy=Never())
            _, res1 = run_pp_sor(config, tmp_path / f"f4-1-{label}",
                                 policy=AtCounts([CKPT_AT]))
            ck = res1.events.of_kind("checkpoint")
            io = ck[-1].data["save_seconds"] if ck else 0.0
            report.add(label, res0.vtime, res1.vtime,
                       res1.vtime - res0.vtime, io)
        return report

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    report.emit(benchmark)

    cost = {r[0]: r[3] for r in report.rows}
    seq = cost["seq"]
    assert seq > 0, "saving must cost something"
    # paper shape 1: the LE series stays close to the sequential cost
    # (only a barrier pair on top of the write)
    for k in (2, 4, 8, 16):
        assert cost[f"{k} LE"] == pytest.approx(seq, rel=0.5)
    # paper shape 2: distributed saves cost more (root collects the data)
    assert cost["16 P"] > seq
    # paper shape 3: 32 P is the worst case (inter-machine gather)
    assert cost["32 P"] > cost["16 P"] * 1.03
    assert cost["32 P"] > seq * 1.05
