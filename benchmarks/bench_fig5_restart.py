"""Figure 5 — restart overhead after a failure at 100 safe points.

Paper: the run fails after 100 safe points; restart replays the
application (cheap — ignorable methods are skipped, only safe points are
counted) and loads the checkpoint (dominant — and higher in distributed
memory, where the loaded data must also be scattered across processes,
worst at 32 P).
"""

from __future__ import annotations

from conftest import le_config, p_config, run_pp_sor
from paper_report import FigureReport
from repro.ckpt.failure import FailureInjector
from repro.ckpt.policy import AtCounts

CONFIGS = [("seq", le_config(1))] + \
    [(f"{k} LE", le_config(k)) for k in (2, 4, 8, 16)] + \
    [(f"{k} P", p_config(k)) for k in (2, 4, 8, 16, 32)]

FAIL_AT = 101
CKPT_AT = 100
ITERS = 120


def test_fig5_restart_overhead(benchmark, tmp_path):
    report = FigureReport(
        "Figure 5", "Restart overhead after failure at 100 safe points "
        "(virtual seconds)",
        ["config", "replay", "load", "restart total"])

    def experiment():
        for label, config in CONFIGS:
            _, res = run_pp_sor(
                config, tmp_path / f"f5-{label}", policy=AtCounts([CKPT_AT]),
                iterations=ITERS, injector=FailureInjector(fail_at=FAIL_AT),
                auto_recover=True)
            assert res.restarts == 1
            restart_phase = res.phases[1]
            restore = [e for e in res.events.of_kind("restore")
                       if e.rank == 0][-1]
            load = restore.data["load_seconds"]
            replay = restore.vtime - restart_phase.start_vtime - load
            total = restore.vtime - restart_phase.start_vtime
            report.add(label, replay, load, total)
        return report

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    report.emit(benchmark)

    rows = {r[0]: r for r in report.rows}
    for label, (_, replay, load, _total) in rows.items():
        # paper shape 1: the restart is dominated by loading, not replay
        assert load > replay, f"{label}: replay should be cheap"
    # paper shape 2: distributed load costs more (data is scattered)
    assert rows["16 P"][2] > rows["seq"][2]
    # paper shape 3: 32 P worst (scatter crosses machines)
    assert rows["32 P"][2] >= rows["16 P"][2]
