"""Elastic reshape vs relaunch — the cost of changing the rank count.

The elastic subsystem (:mod:`repro.elastic`) turns a rank-count
adaptation into a membership transition at a safe point; the alternative
is the classic unwind-and-relaunch.  Both run the *same* adaptation
chain (grow then shrink) on the same woven kernels — ``in_place=False``
on the steps forces the relaunch arm — so the difference is purely the
transition mechanism:

* **wall seconds** — what the host actually pays.  On the
  multiprocessing backend a relaunch re-forks the rank processes and
  re-creates the shared-memory segments and mailbox fabric three times
  over; the elastic arm forks once and parks/un-parks, so reshape must
  beat relaunch (asserted).
* **virtual seconds** — what the cost model charges: the relaunch arm
  pays the modelled teardown/relaunch penalty per step, the elastic arm
  a barrier pair plus spawn costs for grown members only.

SOR moves block-partitioned rows between owners at the transition;
MolDyn exercises the whole-at-safepoints refresh path (replicated
positions/velocities, root -> joiner state sends).
"""

from __future__ import annotations

import time

from paper_report import FigureReport
from repro.apps.moldyn import MolDyn
from repro.apps.plugs.moldyn_plugs import MOLDYN_CKPT, MOLDYN_DIST
from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.core import AdaptStep, AdaptationPlan, ExecConfig, Runtime, plug
from repro.vtime.machine import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=8)

#: kernel -> (class, plugs, ctor kwargs, [grow/shrink safe points...]).
#: Two full grow/shrink cycles: the relaunch arm pays four teardown +
#: relaunch transitions, the elastic arm none.
WORKLOADS = {
    "sor": (SOR, SOR_ADAPTIVE, {"n": 192, "iterations": 16},
            [3, 7, 10, 14]),
    "moldyn": (MolDyn, MOLDYN_DIST + MOLDYN_CKPT, {"n": 48, "steps": 12},
               [2, 5, 8, 11]),
}

#: backend label -> config factory over the PE count.
BACKENDS = {
    "threads": ExecConfig.shared,
    "simcluster": ExecConfig.distributed,
    "multiproc": lambda n: ExecConfig.distributed(n).with_backend(
        "multiproc"),
}

SMALL, BIG = 2, 4


def _chain(cfg, points: list[int], in_place: bool | None) -> AdaptationPlan:
    # alternate grow, shrink, grow, shrink ... over the safe points
    return AdaptationPlan([
        AdaptStep(at=at, config=cfg(BIG if i % 2 == 0 else SMALL),
                  in_place=in_place)
        for i, at in enumerate(points)])


def _run(woven, kwargs, config, plan, tmp_path, tag):
    rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / tag)
    t0 = time.perf_counter()
    res = rt.run(woven, ctor_kwargs=kwargs, entry="execute",
                 config=config, plan=plan, fresh=True)
    return time.perf_counter() - t0, res


def test_elastic_reshape_vs_relaunch(benchmark, tmp_path):
    report = FigureReport(
        "Elastic reshape",
        f"Grow {SMALL}->{BIG} + shrink {BIG}->{SMALL} mid-run: membership "
        "transition vs relaunch (wall and virtual seconds)",
        ["kernel", "backend", "reshape_s", "relaunch_s",
         "reshape_vt", "relaunch_vt", "wall_ratio"])

    def experiment():
        rows = {}
        for kernel, (cls, plugs, kwargs, points) in WORKLOADS.items():
            woven = plug(cls, plugs)
            for backend, cfg in BACKENDS.items():
                rw, rres = _run(woven, kwargs, cfg(SMALL),
                                _chain(cfg, points, None),
                                tmp_path, f"{kernel}-{backend}-re")
                lw, lres = _run(woven, kwargs, cfg(SMALL),
                                _chain(cfg, points, False),
                                tmp_path, f"{kernel}-{backend}-rl")
                rows[(kernel, backend)] = (rw, lw, rres, lres)
                report.add(kernel, backend, rw, lw, rres.vtime, lres.vtime,
                           lw / rw if rw > 0 else float("inf"))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report.emit(benchmark, json_name="elastic_reshape",
                extra={f"{k}_{b}_wall_ratio": lw / rw
                       for (k, b), (rw, lw, _, _) in rows.items()})

    for (kernel, backend), (rw, lw, rres, lres) in rows.items():
        where = f"{kernel}/{backend}"
        # correctness: both arms produce the identical result
        assert rres.value == lres.value, f"{where} diverged"
        # the elastic arm never relaunched; the control arm always did
        assert rres.relaunches == 0, \
            f"{where}: elastic arm relaunched ({rres.phases})"
        assert len(rres.in_place_reshapes) == 4, where
        assert lres.relaunches == 4, f"{where}: control arm ran in place"
        # the cost model agrees the transition got cheaper
        assert rres.vtime < lres.vtime, f"{where}: vtime regressed"

    for kernel in WORKLOADS:
        rw, lw, _, _ = rows[(kernel, "multiproc")]
        # the headline claim: on real processes, parking/un-parking beats
        # re-forking the rank fleet and rebuilding its segments.
        assert rw < lw, (f"multiproc {kernel}: reshape {rw:.3f}s not "
                         f"below relaunch {lw:.3f}s")
