"""Ablation: work-sharing schedule under load imbalance.

The SOR stencil is regular, so its plugs use a static schedule.  This
ablation uses the Series benchmark (per-term trapezoid integrations whose
cost is uniform) and an artificially imbalanced variant to show when the
dynamic schedule earns its keep — the reason the framework exposes
OpenMP's full schedule menu rather than hard-coding static.
"""

from __future__ import annotations

import numpy as np

from paper_report import FigureReport
from repro.apps.series import Series
from repro.core import (
    ExecConfig,
    ForMethod,
    ParallelMethod,
    PlugSet,
    Runtime,
    SingleMethod,
    plug,
)
from repro.smp.sched import Schedule
from repro.vtime.calibrate import GLOBAL_CALIBRATOR
from repro.vtime.machine import MachineModel

MACHINE = MachineModel(nodes=1, cores_per_node=8)

#: pinned per-unit cost of one term integration.  The static/dynamic
#: comparison is a property of the modelled machine, so the rate is a
#: constant, not whatever the host measured that run — together with
#: virtual-clock-gated chunk handout this makes the ablation
#: deterministic (it used to fail ~2/3 of runs on wall-clock noise).
TERM_RATE = 50e-6


class SkewedSeries(Series):
    """Series whose term j costs up to ~8x the base term (imbalanced)."""

    def compute_terms(self, lo: int, hi: int) -> None:
        x = np.linspace(0.0, 2.0, self.m + 1)
        fx = self._f(x)
        for j in range(lo, hi):
            # artificially repeat the integration j-proportionally
            for _ in range(_reps(j)):
                wx = np.pi * j * x
                self.TestArray[0, j] = self._trapezoid(fx * np.cos(wx), x)
                self.TestArray[1, j] = self._trapezoid(fx * np.sin(wx), x)


N_TERMS = 64


def _reps(j: int) -> int:
    return 1 + (7 * j) // N_TERMS


def _skewed_units(lo: int, hi: int) -> int:
    return sum(_reps(j) for j in range(lo, hi))


def _plugs(schedule: Schedule, chunk: int, skewed: bool) -> PlugSet:
    return PlugSet(
        ParallelMethod("do"),
        SingleMethod("compute_a0"),
        # the skewed plug declares its work metric so the virtual-time
        # model sees the imbalance the schedule is supposed to handle
        ForMethod("compute_terms", schedule=schedule, chunk=chunk,
                  units=_skewed_units if skewed else None),
        SingleMethod("finish"),
    )


def test_ablation_schedules(benchmark, tmp_path):
    GLOBAL_CALIBRATOR.pin("Series.compute_terms", TERM_RATE)
    GLOBAL_CALIBRATOR.pin("SkewedSeries.compute_terms", TERM_RATE)
    report = FigureReport(
        "Ablation schedule",
        "Static vs dynamic work sharing, uniform vs skewed terms "
        "(4 threads, virtual seconds)",
        ["workload", "static", "dynamic", "dynamic/static"])

    def run(cls, schedule):
        skewed = cls is SkewedSeries
        woven = plug(cls, _plugs(schedule, chunk=2, skewed=skewed))
        rt = Runtime(machine=MACHINE,
                     ckpt_dir=tmp_path / f"{cls.__name__}-{schedule.value}")
        res = rt.run(woven,
                     ctor_kwargs={"n": N_TERMS, "integration_points": 800},
                     entry="execute", config=ExecConfig.shared(4),
                     fresh=True)
        return res.vtime

    def experiment():
        for name, cls in (("uniform", Series), ("skewed", SkewedSeries)):
            st = run(cls, Schedule.STATIC)
            dy = run(cls, Schedule.DYNAMIC)
            report.add(name, st, dy, dy / st)
        return report

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    report.emit(benchmark)

    rows = {r[0]: r for r in report.rows}
    # dynamic must beat static on the skewed workload (its raison d'etre);
    # the uniform comparison is reported but not asserted — with measured
    # per-chunk costs it sits at the host's timing noise floor.
    assert rows["skewed"][2] < rows["skewed"][1]
