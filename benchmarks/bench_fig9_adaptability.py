"""Figure 9 — overhead of adaptability vs the fixed JGF versions.

Paper (on a cluster of eight-core machines): the JGF Sequential version
never scales; JGF Threads is best on 4-8 cores but cannot leave its
machine; JGF MPI scales to 32; the adaptive (pluggable) version activates
the parallelisation matching the committed resources and stays within 5%
of the best fixed version at every allocation.
"""

from __future__ import annotations

from conftest import EIGHT_CORE_CLUSTER, SOR_ITERS, SOR_N, run_pp_sor
from paper_report import FigureReport
from repro.baselines import run_mpi_sor, run_sequential_sor, run_threads_sor
from repro.grid import MappingPolicy

PES = [1, 4, 8, 16, 32]


def test_fig9_adaptability_overhead(benchmark, tmp_path):
    report = FigureReport(
        "Figure 9", "Fixed JGF versions vs adaptive (virtual seconds)",
        ["PEs", "JGF-Sequential", "JGF-Threads", "JGF-MPI", "Adaptive",
         "adaptive/best"])
    policy = MappingPolicy(EIGHT_CORE_CLUSTER)

    def experiment():
        seq = run_sequential_sor(n=SOR_N, iterations=SOR_ITERS,
                                 machine=EIGHT_CORE_CLUSTER).vtime
        for pe in PES:
            # the Threads version cannot leave its (8-core) machine
            threads = run_threads_sor(
                min(pe, EIGHT_CORE_CLUSTER.cores_per_node),
                n=SOR_N, iterations=SOR_ITERS,
                machine=EIGHT_CORE_CLUSTER).vtime
            mpi = run_mpi_sor(pe, n=SOR_N, iterations=SOR_ITERS,
                              machine=EIGHT_CORE_CLUSTER).vtime
            _, adaptive = run_pp_sor(policy.config_for(pe),
                                     tmp_path / f"f9-{pe}",
                                     machine=EIGHT_CORE_CLUSTER)
            best = min(seq, threads, mpi)
            report.add(pe, seq, threads, mpi, adaptive.vtime,
                       adaptive.vtime / best)
        return report

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    report.emit(benchmark)

    rows = {r[0]: r for r in report.rows}
    # paper shape 1: sequential never changes; MPI scales to 32
    assert rows[32][3] < rows[4][3] < rows[1][1]
    # paper shape 2: threads flat beyond one machine (8 cores)
    assert rows[16][2] == rows[8][2] == rows[32][2]
    # paper shape 3: the adaptive version tracks the best fixed version
    # (paper: within 5%; we allow 12% — the gap is the woven version's
    # scatter/gather entry/exit weighed against numpy-fast compute)
    for pe in PES:
        ratio = rows[pe][5]
        assert ratio <= 1.12, f"{pe} PEs: adaptive {ratio:.3f}x best"
