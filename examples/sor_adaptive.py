#!/usr/bin/env python
"""Run-time adaptation on the paper's evaluation benchmark (JGF SOR).

Reproduces the paper's headline scenario end-to-end: the application
starts sequentially, more resources arrive twice during the run, and the
parallelism structure is reshaped at safe points — sequential -> thread
team -> simulated cluster — without restarting and without changing a
line of the domain code.

Run:  python examples/sor_adaptive.py
"""

import tempfile

from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.core import (
    AdaptStep,
    AdaptationPlan,
    ExecConfig,
    Runtime,
    plug,
)
from repro.vtime.machine import MachineModel

N, ITERS = 400, 40


def main():
    reference = SOR(n=N, iterations=ITERS).execute()

    Woven = plug(SOR, SOR_ADAPTIVE)
    machine = MachineModel(nodes=2, cores_per_node=8)
    plan = AdaptationPlan([
        # at safe point 10 four cores of this node become available
        AdaptStep(at=10, config=ExecConfig.shared(4)),
        # at safe point 25 a second machine joins: go distributed
        AdaptStep(at=25, config=ExecConfig.distributed(12)),
    ])

    with tempfile.TemporaryDirectory() as ckpts:
        rt = Runtime(machine=machine, ckpt_dir=ckpts)
        res = rt.run(Woven, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.sequential(),
                     plan=plan, fresh=True)

    print(f"result {res.value:.9e} (reference {reference:.9e}) "
          f"{'OK' if res.value == reference else 'MISMATCH'}")
    print(f"virtual time: {res.vtime:.4f}s across {len(res.phases)} phases")
    for ph in res.phases:
        print(f"  {ph.config.mode.value:>12} PEs="
              f"{ph.config.processing_elements:<3} "
              f"[{ph.start_vtime:.4f}s -> {ph.end_vtime:.4f}s] "
              f"({ph.outcome})")
    for ad in res.adaptations:
        kind = "restart" if ad.via_restart else "run-time"
        print(f"  adapted at safe point {ad.at_count}: "
              f"{ad.from_config.mode.value} -> {ad.to_config.mode.value} "
              f"({kind})")
    assert res.value == reference


if __name__ == "__main__":
    main()
