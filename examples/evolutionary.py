#!/usr/bin/env python
"""Pluggable parallelisation of an evolutionary algorithm (paper ref [20]).

The paper's case studies include a framework for evolutionary
computation.  This example optimises the Rastrigin function with the
repro GA: fitness evaluation (the expensive phase) is work-shared by the
plug modules, breeding is deterministic replicated arithmetic — so the
optimisation trajectory is bit-identical in every execution mode, and a
long run can checkpoint and survive failures like any other workload.

Run:  python examples/evolutionary.py
"""

import tempfile

from repro.apps.evo import EvolutionaryOptimizer, Rastrigin
from repro.apps.plugs.evo_plugs import EVO_CKPT, EVO_DIST, EVO_SHARED
from repro.ckpt import EveryN, FailureInjector, InjectedFailure
from repro.core import ExecConfig, Runtime, plug

KW = dict(pop_size=96, generations=40, seed=11)


def main():
    problem = Rastrigin(dim=6)
    ref_opt = EvolutionaryOptimizer(problem, **KW)
    reference = ref_opt.execute()
    print(f"sequential best fitness after {KW['generations']} generations: "
          f"{reference:.6f}")
    print(f"best individual: {ref_opt.best_individual().round(3)}")

    with tempfile.TemporaryDirectory() as ckpts:
        # same GA on a 4-thread team and an 8-member aggregate
        for plugset, config in [
            (EVO_SHARED + EVO_CKPT, ExecConfig.shared(4)),
            (EVO_DIST + EVO_CKPT, ExecConfig.distributed(8)),
        ]:
            Woven = plug(EvolutionaryOptimizer, plugset)
            rt = Runtime(ckpt_dir=ckpts)
            res = rt.run(Woven, ctor_args=(problem,), ctor_kwargs=KW,
                         entry="execute", config=config, fresh=True)
            marker = "OK" if res.value == reference else "MISMATCH"
            print(f"{config.mode.value:>12}: best {res.value:.6f} "
                  f"vtime {res.vtime:.4f}s [{marker}]")
            assert res.value == reference

        # crash the GA mid-optimisation and recover from the checkpoint
        Woven = plug(EvolutionaryOptimizer, EVO_CKPT)
        rt = Runtime(ckpt_dir=ckpts, policy=EveryN(10))
        try:
            rt.run(Woven, ctor_args=(problem,), ctor_kwargs=KW,
                   entry="execute", config=ExecConfig.sequential(),
                   injector=FailureInjector(fail_at=25), fresh=True)
        except InjectedFailure:
            print("\ninjected a crash at generation 25 ...")
        res = rt.run(Woven, ctor_args=(problem,), ctor_kwargs=KW,
                     entry="execute", config=ExecConfig.sequential())
        print(f"recovered from generation 20 checkpoint: best "
              f"{res.value:.6f} "
              f"{'OK' if res.value == reference else 'MISMATCH'}")
        assert res.value == reference


if __name__ == "__main__":
    main()
