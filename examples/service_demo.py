#!/usr/bin/env python
"""Running the runtime as a persistent service.

A ``Runtime.run`` call constructs a world — forks rank processes,
allocates shared-memory segments, wires a mailbox fabric — and tears it
all down again.  For one long job that is noise; for a stream of short
jobs it is the bill.  ``RuntimeService`` keeps the world warm:

* a pre-forked **worker fleet** parks between jobs on control channels
  (activation is a message, never a fork);
* a shared-memory **arena** re-leases capacity-classed segments to each
  next job instead of unlink/re-allocate;
* a **job queue** with admission control and fair-share elastic
  scheduling — a waiting higher-priority job shrinks a running elastic
  job in place (the membership transition priced by the advisor), and
  shrunken jobs grow back when the queue drains;
* a **client API** (submit/status/result/cancel) over a local socket,
  so any process can feed the warm world.

Each job gets its own checkpoint namespace in the service's store, and
its results are bit-identical to a direct ``Runtime.run``.

Run:  python examples/service_demo.py
"""

from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.core import plug
from repro.service import RuntimeService, ServiceClient
from repro.vtime import MachineModel


def main():
    woven = plug(SOR, SOR_ADAPTIVE)
    reference = SOR(n=48, iterations=10).execute()

    with RuntimeService(workers=4, lanes=2,
                        machine=MachineModel(nodes=2,
                                             cores_per_node=4)) as svc:
        client = ServiceClient(svc.address)

        # a burst of short jobs: the fleet runs them two lanes wide,
        # zero forks after start-up.
        jobs = [client.submit(woven, ctor_kwargs={"n": 48,
                                                  "iterations": 10},
                              entry="execute", nranks=2)
                for _ in range(6)]
        for jid in jobs:
            out = client.result(jid, timeout=120.0)
            assert out["status"] == "done" and out["value"] == reference
            print(f"job {jid}: value={out['value']:.6e} "
                  f"latency={out['latency_s'] * 1e3:.0f}ms")

        # an elastic job takes the whole fleet ...
        big = client.submit(woven,
                            ctor_kwargs={"n": 48, "iterations": 2500},
                            entry="execute", nranks=4, min_ranks=2)
        import time
        while client.status(big)["status"] != "running":
            time.sleep(0.05)
        time.sleep(0.3)

        # ... until a higher-priority job arrives: the scheduler shrinks
        # the big job in place (no relaunch) to make room.
        urgent = client.submit(woven,
                               ctor_kwargs={"n": 48, "iterations": 10},
                               entry="execute", nranks=2, priority=5)
        out = client.result(urgent, timeout=120.0)
        assert out["status"] == "done" and out["value"] == reference
        print(f"urgent job {urgent}: done while job {big} kept running "
              f"at {client.status(big).get('nranks', '?')} ranks")

        out = client.result(big, timeout=300.0)
        assert out["status"] == "done"
        assert out["value"] == SOR(n=48, iterations=2500).execute()
        print(f"elastic job {big}: done, reshapes={out['reshapes']}, "
              f"relaunches={out['relaunches']}")

        stats = client.stats()
        print(f"fleet: {stats['workers']} workers "
              f"({stats['idle_workers']} idle), arena reusing "
              f"{stats['arena']['segments']} segment(s)")

    print("\nsame results as a cold Runtime, none of the construction.")


if __name__ == "__main__":
    main()
