#!/usr/bin/env python
"""Surviving a volatile Grid: resource changes AND a failure in one run.

The scenario the paper's introduction motivates: an application is
launched on whatever the Grid scheduler granted, the allocation changes
twice while it runs, and one of the machines crashes.  The grid substrate
turns an availability trace into the runtime's inputs (initial
configuration, adaptation plan, failure injector), and the application —
plain domain code plus three plug modules — survives all of it with the
correct final result.

Run:  python examples/grid_volatility.py
"""

import tempfile

from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.ckpt import EveryN
from repro.core import Runtime, plug
from repro.grid import ResourceEvent, ResourceManager, ResourceTrace
from repro.vtime.machine import MachineModel

N, ITERS = 300, 40


def main():
    reference = SOR(n=N, iterations=ITERS).execute()
    machine = MachineModel(nodes=2, cores_per_node=8)

    # The availability trace an external resource-selection tool produced:
    # start on 2 PEs; 12 PEs at safe point 8; a crash at 20 (restart on
    # what survives); shrink to 4 PEs at safe point 30.
    trace = ResourceTrace([
        ResourceEvent(at_safepoint=8, available_pe=12),
        ResourceEvent(at_safepoint=20, available_pe=12, kind="failure"),
        ResourceEvent(at_safepoint=30, available_pe=4, kind="release"),
    ], initial_pe=2)

    mgr = ResourceManager(trace, machine)
    print("trace -> initial:", mgr.initial_config())
    for step in mgr.plan().steps:
        print(f"trace -> at safe point {step.at}: {step.config}")
    print(f"trace -> failure armed at safe point {mgr.injector().fail_at}")

    Woven = plug(SOR, SOR_ADAPTIVE)
    with tempfile.TemporaryDirectory() as ckpts:
        rt = Runtime(machine=machine, ckpt_dir=ckpts, policy=EveryN(5))
        res = rt.run(Woven, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=mgr.initial_config(),
                     plan=mgr.plan(), injector=mgr.injector(),
                     auto_recover=True, recover_config=mgr.recover_config,
                     fresh=True)

    print(f"\nsurvived: result {res.value:.9e} "
          f"{'OK' if res.value == reference else 'MISMATCH'}")
    print(f"restarts: {res.restarts}, adaptations: {len(res.adaptations)}, "
          f"virtual time {res.vtime:.4f}s")
    for ph in res.phases:
        print(f"  {ph.config.mode.value:>12} PEs="
              f"{ph.config.processing_elements:<3} -> {ph.outcome}")
    assert res.value == reference


if __name__ == "__main__":
    main()
