#!/usr/bin/env python
"""The shared-memory telemetry plane, scraped three ways.

Every rank of a telemetry-enabled launch owns a fixed-slot metrics page
in a per-world shared segment and writes it lock-free from the hot
paths — safe-point latency, data-plane tier bytes, mailbox waits, pool
occupancy, checkpoint bytes.  The parent scrapes the pages once at the
end of each launch into a :class:`~repro.telemetry.MetricsRegistry`,
and from there one vocabulary (``repro_<subsystem>_<metric>{rank=,
backend=,job=}``) serves every consumer:

* ``RunResult.metrics`` — the picklable snapshot of a direct run;
* the service ``stats`` RPC and its per-job aggregation;
* a Prometheus text endpoint (``RuntimeService.serve_metrics``) you can
  hit with curl.

Telemetry is wall-side only — virtual time never reads it — so results
are bit-identical with it on or off.

Run:  python examples/telemetry_demo.py
"""

import multiprocessing as mp
from urllib.request import urlopen

from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.ckpt import EveryN
from repro.core import ExecConfig, Runtime, plug
from repro.service import RuntimeService, ServiceClient
from repro.telemetry import MetricsRegistry
from repro.vtime import MachineModel


def main():
    woven = plug(SOR, SOR_ADAPTIVE)
    machine = MachineModel(nodes=2, cores_per_node=4)

    # 1. a direct run: telemetry is on by default; the scraped registry
    #    snapshot rides home on the RunResult.  Real rank processes
    #    (when fork is available) put traffic on the data-plane tiers.
    config = ExecConfig.distributed(2)
    if "fork" in mp.get_all_start_methods():
        config = config.with_backend("multiproc")
    rt = Runtime(machine=machine, policy=EveryN(5))
    res = rt.run(woven, ctor_kwargs={"n": 256, "iterations": 12},
                 entry="execute", config=config)
    reg = MetricsRegistry()
    reg.absorb_snapshot(res.metrics)
    print("one distributed run, scraped from the rank pages:")
    print(f"  safe points      : "
          f"{int(reg.value('repro_exec_safepoints_total'))}")
    tiers = {t: int(reg.value("repro_dsm_send_bytes_total", {"tier": t}))
             for t in ("inline", "slab", "borrow", "tcp")}
    print(f"  bytes by tier    : " + ", ".join(
        f"{t}={v}" for t, v in tiers.items()))
    print(f"  mailbox receives : "
          f"{int(reg.value('repro_dsm_mailbox_recvs_total'))}")
    cnt, tot = reg.hist_totals("repro_exec_safepoint_latency_seconds")
    if cnt:
        print(f"  safe-point latency: {tot / cnt * 1e6:.1f} us mean "
              f"over {int(cnt)} passes")

    print("\nPrometheus exposition (first lines):")
    for line in reg.to_prometheus().splitlines()[:8]:
        print(f"  {line}")

    # 2. the service: each job's snapshot is folded into the service
    #    registry under a job= label, and serve_metrics exposes the
    #    whole thing over plain HTTP for curl-style scraping.
    with RuntimeService(workers=2, lanes=1, machine=machine) as svc:
        host, port = svc.serve_metrics()
        client = ServiceClient(svc.address)
        jid = client.submit(woven,
                            ctor_kwargs={"n": 48, "iterations": 10},
                            entry="execute", nranks=2)
        client.result(jid, timeout=120.0)

        stats = client.stats()
        series = stats["metrics"]["series"]
        print(f"\nservice stats RPC: {len(series)} metric series "
              f"(idle workers gauge = "
              f"{stats['idle_workers']}, deprecated flat key)")

        body = urlopen(f"http://{host}:{port}/metrics",
                       timeout=10).read().decode()
        svc_lines = [ln for ln in body.splitlines()
                     if ln.startswith("repro_service_")]
        print(f"curl http://{host}:{port}/metrics ->")
        for line in svc_lines[:5]:
            print(f"  {line}")


if __name__ == "__main__":
    main()
