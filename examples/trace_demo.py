#!/usr/bin/env python
"""The distributed tracing plane: a run's timeline, Perfetto-ready.

Every rank of a traced launch owns a lock-free ring buffer of binary
event records in a per-world shared segment: spans for safe points,
checkpoints and elastic transitions, instants for membership switches,
and a ``(src, dst, tag, epoch, seq)`` stamp on every transport message
so cross-rank flow arrows reconstruct who waited on whom.  The parent
assembles the scraped rings — one track per rank plus the driver's
phase track — into Chrome trace-event JSON that
https://ui.perfetto.dev (or ``chrome://tracing``) loads directly.

``trace="flight"`` shrinks the rings to a rolling black box: on a rank
failure the failure report carries the last moments of every rank,
including the one that died.

Tracing is wall-side only — virtual time never reads it — so results
are bit-identical with it on or off.

Run:  python examples/trace_demo.py        # writes trace.json
"""

import json
import multiprocessing as mp

from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.ckpt import EveryN, FailureInjector
from repro.core import ExecConfig, Runtime, plug
from repro.trace import validate_chrome_trace
from repro.vtime import MachineModel


def main():
    woven = plug(SOR, SOR_ADAPTIVE)
    machine = MachineModel(nodes=2, cores_per_node=4)

    # 1. a traced distributed run: real rank processes when fork is
    #    available, in-process rank threads otherwise — the rings and
    #    the assembled document are the same either way.
    config = ExecConfig.distributed(3)
    if "fork" in mp.get_all_start_methods():
        config = config.with_backend("multiproc")
    rt = Runtime(machine=machine, policy=EveryN(5), trace=True)
    res = rt.run(woven, ctor_kwargs={"n": 256, "iterations": 12},
                 entry="execute", config=config)
    doc = res.trace
    counts = validate_chrome_trace(doc)
    with open("trace.json", "w") as f:
        json.dump(doc, f)
    print("traced run -> trace.json "
          "(load it at https://ui.perfetto.dev):")
    print(f"  tracks (driver + ranks): {counts['tracks']}")
    print(f"  span events            : {counts['spans']}")
    print(f"  instants               : {counts['instants']}")
    print(f"  cross-rank flow arrows : {counts['flows']}")
    names = {}
    for ev in doc["traceEvents"]:
        if ev.get("ph") == "B":
            names[ev["name"]] = names.get(ev["name"], 0) + 1
    print("  spans by name          : " + ", ".join(
        f"{k}={v}" for k, v in sorted(names.items())))

    # 2. the flight recorder: small rings, and an injected rank failure
    #    whose report carries every rank's last recorded moments.
    rt = Runtime(machine=machine, policy=EveryN(5), trace="flight")
    res = rt.run(woven, ctor_kwargs={"n": 256, "iterations": 12},
                 entry="execute", config=config, fresh=True,
                 injector=FailureInjector(fail_at=6), auto_recover=True)
    snaps = res.trace["otherData"]["flight_snapshots"]
    box = snaps[0]["ranks"]
    print(f"\nflight recorder: rank {snaps[0]['rank']} failed at "
          f"safe point {snaps[0]['safepoint']}; black box holds:")
    for rank in sorted(box):
        tail = box[rank][-1]["name"] if box[rank] else "-"
        print(f"  {rank:>6}: {len(box[rank]):3d} records "
              f"(last: {tail})")
    print(f"run recovered: {res.restarts} restart, "
          f"value intact = {res.value == SOR(n=256, iterations=12).execute()}")


if __name__ == "__main__":
    main()
