#!/usr/bin/env python
"""Quickstart: one sequential code base, four execution modes.

Walks through the core workflow of pluggable parallelisation:

1. write a plain domain class (here: a tiny heat-diffusion stencil);
2. declare parallelisation + checkpointing in separate plug sets;
3. weave with ``plug`` and run the SAME class sequentially, on a thread
   team, on a simulated cluster and hybrid — identical results, with
   checkpointing available everywhere for free.

Run:  python examples/quickstart.py
"""

import tempfile

import numpy as np

from repro.core import (
    BarrierAfter,
    ExecConfig,
    ForMethod,
    GatherAfter,
    HaloExchangeBefore,
    IgnorableMethod,
    ParallelMethod,
    Partitioned,
    PlugSet,
    Runtime,
    SafeData,
    SafePointAfter,
    ScatterBefore,
    SingleMethod,
    plug,
)
from repro.dsm.partition import BlockLayout


# ---------------------------------------------------------------------------
# 1. domain-specific code: no threads, no ranks, no checkpoints
# ---------------------------------------------------------------------------
class Heat:
    """Explicit (Jacobi) heat diffusion on a 1-D rod.

    Double-buffered on purpose: each step reads ``u`` and writes
    ``u_next``, so the update is independent of how the row range is
    chunked — the property that makes work sharing (and distribution)
    produce bit-identical results.
    """

    def __init__(self, n=256, steps=50, alpha=0.4):
        self.u = np.zeros((n, 1))
        self.u[n // 2] = 100.0  # a hot spot in the middle
        self.u_next = self.u.copy()
        self.steps = steps
        self.alpha = alpha
        self.steps_done = 0

    def execute(self):
        self.run()
        return float(self.u.sum())

    def run(self):
        for _ in range(self.steps):
            self.step()
            self.advance()
            self.tick()

    def step(self):
        self.diffuse(1, len(self.u) - 1)

    def diffuse(self, lo, hi):
        u, un = self.u, self.u_next
        un[lo:hi] = u[lo:hi] + self.alpha * (u[lo - 1:hi - 1]
                                             - 2 * u[lo:hi]
                                             + u[lo + 1:hi + 1])

    def advance(self):
        self.u[...] = self.u_next

    def tick(self):
        self.steps_done += 1


# ---------------------------------------------------------------------------
# 2. the concerns, each in its own pluggable module
# ---------------------------------------------------------------------------
PARALLEL = PlugSet(
    ParallelMethod("run"),
    Partitioned("u", BlockLayout(axis=0, halo=1)),
    ScatterBefore("run", "u"),
    GatherAfter("run", "u"),
    ForMethod("diffuse", align="u"),
    HaloExchangeBefore("diffuse", "u"),
    BarrierAfter("diffuse"),
    SingleMethod("advance"),
    BarrierAfter("advance"),
    SingleMethod("tick"),
    name="heat-parallel",
)

CHECKPOINT = PlugSet(
    SafeData("u", "steps_done"),
    SafePointAfter("tick"),
    IgnorableMethod("step"),
    name="heat-ckpt",
)


def main():
    reference = Heat().execute()
    print(f"plain sequential result: {reference:.6f}")

    # 3. weave once, run anywhere
    Woven = plug(Heat, PARALLEL + CHECKPOINT)
    with tempfile.TemporaryDirectory() as ckpts:
        rt = Runtime(ckpt_dir=ckpts)
        for config in (ExecConfig.sequential(),
                       ExecConfig.shared(4),
                       ExecConfig.distributed(4),
                       ExecConfig.hybrid(2, 2)):
            res = rt.run(Woven, entry="execute", config=config, fresh=True)
            marker = "OK" if res.value == reference else "MISMATCH"
            print(f"{config.mode.value:>12} "
                  f"(PEs={config.processing_elements}): "
                  f"result={res.value:.6f} vtime={res.vtime:.4f}s [{marker}]")
            assert res.value == reference

    print("\nsame code base, four execution modes, identical results.")


if __name__ == "__main__":
    main()
