#!/usr/bin/env python
"""Checkpointing, crashing and replay-restarting — across modes.

Demonstrates the paper's Figure 2 lifecycle:

* a distributed run checkpoints every 5 safe points (master-collected,
  mode-independent format);
* a failure is injected mid-run (standing in for a crashed machine);
* the next launch detects the crash through the run-status ledger (the
  ``pcr`` check), replays to the last checkpoint skipping the expensive
  ignorable methods, loads the data, and finishes — here on a *different*
  execution mode, which is legal precisely because the master-collected
  checkpoint format is the same in all environments.

Run:  python examples/checkpoint_restart.py
"""

import tempfile

from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.ckpt import EveryN, FailureInjector, InjectedFailure
from repro.core import ExecConfig, Runtime, plug
from repro.vtime.machine import MachineModel

N, ITERS = 300, 30


def main():
    reference = SOR(n=N, iterations=ITERS).execute()
    Woven = plug(SOR, SOR_ADAPTIVE)
    machine = MachineModel(nodes=2, cores_per_node=8)

    with tempfile.TemporaryDirectory() as ckpts:
        rt = Runtime(machine=machine, ckpt_dir=ckpts, policy=EveryN(5))
        kw = dict(ctor_kwargs={"n": N, "iterations": ITERS},
                  entry="execute")

        print("run 1: distributed on 8 members, failure injected at safe "
              "point 17 ...")
        try:
            rt.run(Woven, config=ExecConfig.distributed(8),
                   injector=FailureInjector(fail_at=17), fresh=True, **kw)
            raise SystemExit("expected a failure!")
        except InjectedFailure as exc:
            print(f"  crashed: {exc}")

        print(f"  ledger says previous run failed: "
              f"{rt.ledger.previous_run_failed()}")
        latest = rt.store.read_latest()
        print(f"  newest intact checkpoint: safe point "
              f"{latest.safepoint_count}, {latest.nbytes / 1e6:.2f} MB, "
              f"written under mode={latest.mode!r}")

        print("run 2: restarting on a 4-thread team (different mode!) ...")
        res = rt.run(Woven, config=ExecConfig.shared(4), **kw)
        restores = res.events.of_kind("restore")
        print(f"  replayed to safe point {restores[-1].data['count']}, "
              f"loaded {restores[-1].data['nbytes'] / 1e6:.2f} MB in "
              f"{restores[-1].data['load_seconds']:.4f} virtual seconds")
        print(f"  result {res.value:.9e} "
              f"{'== reference, OK' if res.value == reference else 'MISMATCH'}")
        assert res.value == reference


if __name__ == "__main__":
    main()
