"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file only exists so
that offline environments lacking the ``wheel`` package can still do an
editable install via the legacy path::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
